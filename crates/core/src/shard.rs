//! Sharded CuckooGraph: N independent L-CHT/S-CHT engines partitioned by
//! source-node hash, with batched mutations fanned out to the shards on
//! [`std::thread::scope`] — and, since PR 7, queries that proceed
//! **concurrently with an ingesting writer** through the per-shard
//! [`ReadCoordinator`] protocol of [`crate::epoch`].
//!
//! Every edge `⟨u, v⟩` lives entirely inside the shard that owns `u`, so the
//! shards partition the source-node space and never share mutable state: a
//! batched insert groups the batch per shard and moves each group to its
//! shard's thread. Single-edge operations route to the owning shard and cost
//! one extra hash over the serial engine.
//!
//! ## Concurrent reads under ingest
//!
//! Each shard is a [`ShardSlot`]: the engine in an [`UnsafeCell`], a
//! [`ReadCoordinator`], and a writer gate. Two access disciplines share them:
//!
//! * **Exclusive (`&mut self`)** — the classic surface. The borrow checker
//!   proves exclusivity, so [`DynamicGraph::insert_edges`] and friends go
//!   straight to the engine with no coordination at all; the fan-out spawns
//!   one scoped thread per non-empty group exactly as before.
//! * **Shared (`&self`)** — [`Sharded::ingest_batch`] /
//!   [`Sharded::remove_batch`] mutate through `&self` while
//!   [`Sharded::read_view`] guards (or one-shot [`Sharded::with_shard`]
//!   reads) query the same shards. The writer gate serializes writers per
//!   shard; within the gate the writer opens short seqlock *mutation windows*
//!   (one per [`INGEST_CHUNK`] edges) that drain announced readers, so reads
//!   flow between chunks instead of waiting out the whole batch. Table
//!   buffers retired by TRANSFORMATIONs inside a window are epoch-stamped and
//!   quarantined in the [`crate::pool::TablePool`], re-entering circulation
//!   only once [`ReadCoordinator::reclaim_bound`] proves no reader pinned at
//!   an older epoch can still reference them.
//!
//! `CuckooGraphConfig::with_concurrent_reads(false)` keeps the pre-PR-7
//! exclusive behaviour as the live oracle: every shared read and every write
//! section simply takes the shard's gate, so queries wait out the writer's
//! whole batch. The `concurrent_read_model` property tests pin the two paths
//! against each other.
//!
//! The per-shard engines inherit the PR-4 probe path wholesale: every batched
//! group a shard thread settles runs the tagged-bucket scan, per-run hash
//! memoization, and next-key prefetching of [`crate::engine::Engine`]'s batch
//! drivers — the fan-out multiplies that per-shard speedup rather than
//! replacing it. (Shard routing itself hashes `u` with [`splitmix64`] +
//! [`SHARD_SALT`], deliberately decorrelated from the engines' internal
//! bucket hashing, so nothing is shared across the boundary to memoize.)

use std::cell::UnsafeCell;
use std::sync::Mutex;

use crate::config::CuckooGraphConfig;
use crate::epoch::{ConcurrentEngine, ReadCoordinator, ReadCounters};
use crate::graph::CuckooGraph;
use crate::hash::splitmix64;
use crate::stats::StructureStats;
use crate::weighted::WeightedCuckooGraph;
use graph_api::{
    DynamicGraph, EdgeExport, EdgeImport, EdgeRecord, GraphReadSnapshot, GraphScheme,
    MemoryFootprint, NodeId, ShardedGraph, WeightedDynamicGraph,
};

/// Salt folded into the shard hash so shard routing is independent of the
/// engines' internal Bob-Hash seeds.
const SHARD_SALT: u64 = 0x0005_eade_dc0c_0a75;

/// Edges a concurrent writer settles per mutation window. Small enough that a
/// reader arriving mid-batch waits one chunk, not one batch; large enough
/// that the window open/drain/close handshake amortizes to noise.
const INGEST_CHUNK: usize = 512;

/// One shard: the engine plus its read/write coordination state.
///
/// The `UnsafeCell` is governed by two invariants, together making every
/// `&mut` derivation exclusive:
///
/// 1. mutation through `&ShardSlot` happens only inside [`ShardSlot::write`],
///    which holds `write_gate` — writers never overlap each other;
/// 2. readers either hold `write_gate` too (oracle mode) or hold a
///    [`ReadCoordinator`] pin (concurrent mode), which
///    [`ReadCoordinator::begin_write`] drains before the writer touches the
///    engine — writers never overlap readers.
///
/// `&mut ShardSlot` access (the classic exclusive surface) needs neither: the
/// borrow checker has already proven no `&ShardSlot` exists.
struct ShardSlot<G> {
    engine: UnsafeCell<G>,
    coord: ReadCoordinator,
    write_gate: Mutex<()>,
}

/// Safety: all shared-access mutation is mediated by `write_gate` + the
/// coordinator drain protocol (see the struct docs), so `&ShardSlot` never
/// yields aliasing `&mut G`. `G: Send` moves engines across the fan-out's
/// scoped threads; `G: Sync` covers the concurrent shared reads.
#[allow(unsafe_code)]
unsafe impl<G: Send + Sync> Sync for ShardSlot<G> {}

#[allow(unsafe_code)]
impl<G> ShardSlot<G> {
    fn new(engine: G) -> Self {
        Self {
            engine: UnsafeCell::new(engine),
            coord: ReadCoordinator::new(),
            write_gate: Mutex::new(()),
        }
    }

    /// Exclusive access through an exclusive borrow — no coordination needed.
    fn engine_mut(&mut self) -> &mut G {
        self.engine.get_mut()
    }

    /// A shared read of this shard's engine. Oracle mode takes the writer
    /// gate (waits out a whole in-flight batch); concurrent mode registers,
    /// pins, reads, and withdraws per the seqlock protocol.
    fn read<R>(&self, concurrent: bool, f: impl FnOnce(&G) -> R) -> R {
        if concurrent {
            let idx = self.coord.acquire_slot();
            let r = {
                let _pin = PinGuard::pin(&self.coord, idx);
                f(unsafe { &*self.engine.get() })
            };
            self.coord.release_slot(idx);
            r
        } else {
            let _gate = self.write_gate.lock().expect("shard write gate poisoned");
            f(unsafe { &*self.engine.get() })
        }
    }

    /// Like [`ShardSlot::read`] but reusing an already registered reader slot
    /// (a [`ShardReadView`] holds one per shard, so hot read loops skip the
    /// registry CAS).
    fn read_pinned<R>(&self, idx: usize, f: impl FnOnce(&G) -> R) -> R {
        let _pin = PinGuard::pin(&self.coord, idx);
        f(unsafe { &*self.engine.get() })
    }

    /// A write section through a shared borrow. The gate serializes writers;
    /// concurrent mode additionally opens a drained mutation window and runs
    /// the epoch-stamped retire/reclaim hooks around `f`.
    fn write<R>(&self, concurrent: bool, f: impl FnOnce(&mut G) -> R) -> R
    where
        G: ConcurrentEngine,
    {
        let _gate = self.write_gate.lock().expect("shard write gate poisoned");
        if concurrent {
            let epoch = self.coord.begin_write();
            // Safety: the gate excludes other writers and the drain excluded
            // every reader pin; new pins wait on the odd sequence word.
            let engine = unsafe { &mut *self.engine.get() };
            engine.begin_concurrent_write(epoch);
            let r = f(engine);
            // Reclaim while still inside the drained window: the engine is
            // ours exclusively here, and the bound already resolves to
            // `epoch + 1` because the registry is empty.
            engine.end_concurrent_write(self.coord.reclaim_bound());
            self.coord.end_write();
            r
        } else {
            // Safety: the gate is the oracle mode's entire protocol — readers
            // take it too, so this `&mut` is exclusive.
            f(unsafe { &mut *self.engine.get() })
        }
    }
}

/// Unpins a reader slot even if the read closure panics, so a writer's drain
/// loop is never left waiting on a dead reader.
struct PinGuard<'c> {
    coord: &'c ReadCoordinator,
    idx: usize,
}

impl<'c> PinGuard<'c> {
    fn pin(coord: &'c ReadCoordinator, idx: usize) -> Self {
        coord.pin(idx);
        Self { coord, idx }
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.coord.unpin(self.idx);
    }
}

/// A graph partitioned into independent shards by source-node hash.
///
/// The concrete CuckooGraph instantiations are [`ShardedCuckooGraph`] and
/// [`ShardedWeightedCuckooGraph`]; the struct itself only asks its shard type
/// for the [`DynamicGraph`] surface (plus [`Send`] to fan batches out across
/// scoped threads, and [`Sync`] for the shared reads and parallel scans).
pub struct Sharded<G> {
    slots: Vec<ShardSlot<G>>,
    /// Whether shared (`&self`) access uses the seqlock/epoch protocol
    /// (`true`, the default) or the exclusive writer gate (`false`, the
    /// pre-PR-7 oracle).
    concurrent: bool,
}

/// CuckooGraph, sharded: N independent basic engines.
///
/// ```
/// use cuckoograph::ShardedCuckooGraph;
/// use graph_api::DynamicGraph;
///
/// let mut g = ShardedCuckooGraph::new(4);
/// assert_eq!(g.insert_edges(&[(1, 2), (1, 3), (2, 3), (1, 2)]), 3);
/// assert!(g.has_edge(1, 2));
/// assert_eq!(g.out_degree(1), 2);
/// assert_eq!(g.remove_edges(&[(1, 2), (9, 9)]), 1);
/// assert_eq!(g.edge_count(), 2);
///
/// // Shared-surface ingest + a concurrent read view of the same graph.
/// let view = g.read_view();
/// g.ingest_batch(&[(7, 8)]);
/// assert!(view.has_edge(7, 8));
/// ```
pub type ShardedCuckooGraph = Sharded<CuckooGraph>;

/// WeightedCuckooGraph, sharded: N independent weighted engines.
///
/// ```
/// use cuckoograph::ShardedWeightedCuckooGraph;
/// use graph_api::WeightedDynamicGraph;
///
/// let mut g = ShardedWeightedCuckooGraph::new(2);
/// g.insert_weighted_edges(&[(1, 2, 3), (1, 2, 1)]);
/// assert_eq!(g.weight(1, 2), 4);
/// ```
pub type ShardedWeightedCuckooGraph = Sharded<WeightedCuckooGraph>;

impl<G> Sharded<G> {
    /// Wraps pre-built shard engines (concurrent reads enabled, matching the
    /// config default). Panics if `shards` is empty.
    pub fn from_shards(shards: Vec<G>) -> Self {
        assert!(!shards.is_empty(), "a sharded graph needs at least 1 shard");
        Self {
            slots: shards.into_iter().map(ShardSlot::new).collect(),
            concurrent: true,
        }
    }

    /// Builds `shards` engines with `build(shard_index)`.
    pub fn from_fn(shards: usize, build: impl FnMut(usize) -> G) -> Self {
        Self::from_shards((0..shards.max(1)).map(build).collect())
    }

    /// Builder-style switch for the shared-read discipline: `false` selects
    /// the exclusive writer-gate oracle (every `&self` read and write section
    /// serializes on the shard's mutex — the pre-PR-7 behaviour).
    pub fn with_concurrent_reads(mut self, enabled: bool) -> Self {
        self.concurrent = enabled;
        self
    }

    /// Whether shared reads use the seqlock/epoch protocol.
    pub fn concurrent_reads(&self) -> bool {
        self.concurrent
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Index of the shard that owns source node `u`.
    #[inline]
    pub fn shard_index(&self, u: NodeId) -> usize {
        if self.slots.len() == 1 {
            return 0;
        }
        (splitmix64(u ^ SHARD_SALT) as usize) % self.slots.len()
    }

    /// Runs `f` on shard `shard`'s engine under the configured read
    /// discipline (a one-shot read: registers and withdraws a reader slot;
    /// hot loops should hold a [`Sharded::read_view`] instead).
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&G) -> R) -> R {
        self.slots[shard].read(self.concurrent, f)
    }

    /// Mutable access to the shard engine owning source node `u` (exclusive
    /// surface; no coordination needed).
    #[inline]
    fn engine_for_mut(&mut self, u: NodeId) -> &mut G {
        let idx = self.shard_index(u);
        self.slots[idx].engine_mut()
    }

    /// Opens a read guard over the whole graph: one registered reader slot
    /// per shard (none in oracle mode), so every read through the view pins
    /// and validates without re-registering. Holding a view does **not**
    /// block `&self` writers — they drain the view's pins chunk by chunk.
    ///
    /// At most [`crate::MAX_READERS`] views (plus one-shot reads) can be
    /// registered per shard at once; surplus callers spin until a slot frees.
    pub fn read_view(&self) -> ShardReadView<'_, G> {
        let slots = if self.concurrent {
            self.slots.iter().map(|s| s.coord.acquire_slot()).collect()
        } else {
            Vec::new()
        };
        ShardReadView { graph: self, slots }
    }

    /// Summed read-coordinator counters across all shards (always readable
    /// concurrently; all zero in oracle mode or before any shared access).
    pub fn read_counters(&self) -> ReadCounters {
        let mut total = ReadCounters::default();
        for slot in &self.slots {
            let c = slot.coord.counters();
            total.reader_retries += c.reader_retries;
            total.read_pins += c.read_pins;
            total.epoch_advances += c.epoch_advances;
        }
        total
    }

    /// Groups `items` per owning shard, preserving the within-shard order (so
    /// source-sorted batches keep their runs). Two passes: count, then scatter
    /// into exactly-sized buffers.
    fn group_by_shard<T: Copy>(&self, items: &[T], key: impl Fn(&T) -> NodeId) -> Vec<Vec<T>> {
        let mut counts = vec![0usize; self.slots.len()];
        for item in items {
            counts[self.shard_index(key(item))] += 1;
        }
        let mut groups: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for item in items {
            groups[self.shard_index(key(item))].push(*item);
        }
        groups
    }

    /// Runs `apply(shard, group)` for every non-empty group on its shard's
    /// thread and sums the returned counts. The groups are disjoint and each
    /// thread owns exactly one `&mut` shard, so the fan-out needs no locks.
    fn fan_out_mut<T: Sync>(
        &mut self,
        groups: &[Vec<T>],
        apply: impl Fn(&mut G, &[T]) -> usize + Sync,
    ) -> usize
    where
        G: Send,
    {
        let mut counts = vec![0usize; self.slots.len()];
        std::thread::scope(|scope| {
            for ((slot, group), count) in self.slots.iter_mut().zip(groups).zip(counts.iter_mut()) {
                if group.is_empty() {
                    continue;
                }
                let apply = &apply;
                let engine = slot.engine_mut();
                scope.spawn(move || *count = apply(engine, group));
            }
        });
        counts.iter().sum()
    }

    /// The shared-surface fan-out: groups `items` per shard and runs
    /// `apply(engine, chunk)` inside gated write sections of at most
    /// [`INGEST_CHUNK`] items, one scoped thread per non-empty group.
    /// Concurrent readers flow between the chunks; table buffers retired
    /// inside a chunk are epoch-quarantined until provably unreferenced.
    pub fn concurrent_fan_out<T: Copy + Sync>(
        &self,
        items: &[T],
        key: impl Fn(&T) -> NodeId,
        apply: impl Fn(&mut G, &[T]) -> usize + Sync,
    ) -> usize
    where
        G: ConcurrentEngine + Send + Sync,
    {
        let groups = self.group_by_shard(items, &key);
        let concurrent = self.concurrent;
        let apply = &apply;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slots
                .iter()
                .zip(&groups)
                .filter(|(_, group)| !group.is_empty())
                .map(|(slot, group)| {
                    scope.spawn(move || {
                        let mut done = 0usize;
                        for chunk in group.chunks(INGEST_CHUNK) {
                            done += slot.write(concurrent, |g| apply(g, chunk));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard ingest panicked"))
                .sum()
        })
    }

    /// A single gated write section on the shard owning source node `u`,
    /// through `&self` — the per-command counterpart of the batched
    /// [`Sharded::ingest_batch`] fan-out, safe to run while
    /// [`Sharded::read_view`] guards query the same shards. No threads are
    /// spawned: the caller pays one gate lock plus (in concurrent mode) one
    /// drained mutation window, so a serving loop can apply individual
    /// commands without batch-sized latency.
    pub fn update_shard<R>(&self, u: NodeId, f: impl FnOnce(&mut G) -> R) -> R
    where
        G: ConcurrentEngine,
    {
        let idx = self.shard_index(u);
        self.slots[idx].write(self.concurrent, f)
    }

    /// Runs `f` on every shard concurrently (one scoped thread per shard,
    /// each under the configured read discipline) and returns the per-shard
    /// results in shard order — the building block for whole-graph parallel
    /// scans.
    pub fn par_map_shards<R: Send>(&self, f: impl Fn(&G) -> R + Sync) -> Vec<R>
    where
        G: Send + Sync,
    {
        let concurrent = self.concurrent;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slots
                .iter()
                .map(|slot| {
                    let f = &f;
                    scope.spawn(move || slot.read(concurrent, f))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard scan panicked"))
                .collect()
        })
    }
}

impl<G: DynamicGraph + ConcurrentEngine + Send + Sync> Sharded<G> {
    /// Batched insert through `&self`: the concurrent counterpart of
    /// [`DynamicGraph::insert_edges`], safe to run while
    /// [`Sharded::read_view`] guards query the same shards. Returns the
    /// number of edges newly created.
    pub fn ingest_batch(&self, edges: &[(NodeId, NodeId)]) -> usize {
        self.concurrent_fan_out(edges, |&(u, _)| u, |g, chunk| g.insert_edges(chunk))
    }

    /// Batched delete through `&self`: the concurrent counterpart of
    /// [`DynamicGraph::remove_edges`]. Returns the number of edges removed.
    pub fn remove_batch(&self, edges: &[(NodeId, NodeId)]) -> usize {
        self.concurrent_fan_out(edges, |&(u, _)| u, |g, chunk| g.remove_edges(chunk))
    }
}

impl<G: WeightedDynamicGraph + DynamicGraph + ConcurrentEngine + Send + Sync> Sharded<G> {
    /// Batched weighted insert through `&self`: the concurrent counterpart of
    /// [`WeightedDynamicGraph::insert_weighted_edges`]. Returns the number of
    /// distinct edges newly created.
    pub fn ingest_weighted_batch(&self, edges: &[(NodeId, NodeId, u64)]) -> usize {
        self.concurrent_fan_out(
            edges,
            |&(u, _, _)| u,
            |g, chunk| g.insert_weighted_edges(chunk),
        )
    }
}

impl<G: EdgeExport> EdgeExport for Sharded<G> {
    fn for_each_edge_record(&self, f: &mut dyn FnMut(EdgeRecord)) {
        for shard in 0..self.slots.len() {
            self.with_shard(shard, |g| g.for_each_edge_record(f));
        }
    }

    fn edge_record_count(&self) -> usize {
        (0..self.slots.len())
            .map(|shard| self.with_shard(shard, |g| g.edge_record_count()))
            .sum()
    }
}

impl<G: EdgeImport + Send> EdgeImport for Sharded<G> {
    fn import_edge_records(&mut self, records: &[EdgeRecord]) {
        // Same shape as the batched mutation paths: group per owning shard,
        // fan each group out to its shard's thread.
        let groups = self.group_by_shard(records, |r| r.source);
        self.fan_out_mut(&groups, |g, group| {
            g.import_edge_records(group);
            group.len()
        });
    }
}

/// A read guard over a [`Sharded`] graph: holds one registered reader slot
/// per shard (none in oracle mode), so its queries pin/validate per the
/// seqlock protocol without paying the registry CAS each time. Queries
/// through the view are safe while `&self` writers
/// ([`Sharded::ingest_batch`] etc.) mutate the same shards: each read either
/// completes before a mutation window opens or waits the window out — it
/// never observes torn state. Dropping the view withdraws its registrations.
#[derive(Debug)]
pub struct ShardReadView<'a, G> {
    graph: &'a Sharded<G>,
    /// Registered reader-slot index per shard; empty in oracle mode.
    slots: Vec<usize>,
}

impl<G> ShardReadView<'_, G> {
    /// Runs `f` on shard `shard`'s engine under this view's registration.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&G) -> R) -> R {
        let slot = &self.graph.slots[shard];
        if self.slots.is_empty() {
            slot.read(false, f)
        } else {
            slot.read_pinned(self.slots[shard], f)
        }
    }
}

impl<G: DynamicGraph> ShardReadView<'_, G> {
    /// Whether edge `⟨u, v⟩` is currently stored.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.with_shard(self.graph.shard_index(u), |g| g.has_edge(u, v))
    }

    /// Calls `f` with every current successor of `u`.
    pub fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.with_shard(self.graph.shard_index(u), |g| g.for_each_successor(u, f));
    }

    /// Collects the current successors of `u`.
    pub fn successors(&self, u: NodeId) -> Vec<NodeId> {
        self.with_shard(self.graph.shard_index(u), |g| g.successors(u))
    }

    /// Current out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.with_shard(self.graph.shard_index(u), |g| g.out_degree(u))
    }

    /// Total stored edges (summed shard by shard; a concurrent writer may
    /// land between shard reads, so the sum is a consistent-per-shard
    /// snapshot, not a global one).
    pub fn edge_count(&self) -> usize {
        (0..self.graph.shard_count())
            .map(|i| self.with_shard(i, DynamicGraph::edge_count))
            .sum()
    }

    /// Total stored source nodes (same per-shard snapshot semantics as
    /// [`ShardReadView::edge_count`]).
    pub fn node_count(&self) -> usize {
        (0..self.graph.shard_count())
            .map(|i| self.with_shard(i, DynamicGraph::node_count))
            .sum()
    }
}

/// The serving layer's read-classification surface: every operation a RESP
/// graph *read* command needs, answered through the view's registered reader
/// slots — never through a writer gate in concurrent mode.
impl<G: DynamicGraph> GraphReadSnapshot for ShardReadView<'_, G> {
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        ShardReadView::has_edge(self, u, v)
    }

    fn out_degree(&self, u: NodeId) -> usize {
        ShardReadView::out_degree(self, u)
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        ShardReadView::for_each_successor(self, u, f);
    }

    fn edge_count(&self) -> usize {
        ShardReadView::edge_count(self)
    }

    fn node_count(&self) -> usize {
        ShardReadView::node_count(self)
    }
}

impl<G> Drop for ShardReadView<'_, G> {
    fn drop(&mut self) {
        for (slot, &idx) in self.graph.slots.iter().zip(&self.slots) {
            slot.coord.release_slot(idx);
        }
    }
}

impl<G: Clone> Clone for Sharded<G> {
    /// Clones the shard engines (each under its writer gate, so an in-flight
    /// `&self` batch on the source finishes its shard first). The clone gets
    /// fresh coordinators: registrations, pins, and read counters do not
    /// carry over.
    #[allow(unsafe_code)] // Safety: the gate excludes writers; clone only reads.
    fn clone(&self) -> Self {
        Self {
            slots: self
                .slots
                .iter()
                .map(|slot| {
                    let _gate = slot.write_gate.lock().expect("shard write gate poisoned");
                    ShardSlot::new(unsafe { &*slot.engine.get() }.clone())
                })
                .collect(),
            concurrent: self.concurrent,
        }
    }
}

impl<G> std::fmt::Debug for Sharded<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sharded")
            .field("shards", &self.slots.len())
            .field("concurrent_reads", &self.concurrent)
            .finish()
    }
}

impl Sharded<CuckooGraph> {
    /// Creates a sharded basic graph with the paper's default parameters in
    /// every shard (seeds decorrelated per shard).
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, CuckooGraphConfig::default())
    }

    /// Creates a sharded basic graph from a shared configuration; each shard
    /// derives its own hash seeds so kick-out behaviour is independent, and
    /// `config.concurrent_reads` selects the shared-read discipline.
    pub fn with_config(shards: usize, config: CuckooGraphConfig) -> Self {
        let concurrent = config.concurrent_reads;
        Self::from_fn(shards, |i| {
            CuckooGraph::with_config(config.clone().with_seed(shard_seed(config.seed, i)))
        })
        .with_concurrent_reads(concurrent)
    }

    /// Calls `f` for every stored edge `⟨u, v⟩` across all shards.
    pub fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        for i in 0..self.slots.len() {
            self.with_shard(i, |shard| shard.for_each_edge(&mut f));
        }
    }

    /// Collects every stored edge, scanning the shards in parallel and
    /// concatenating the per-shard lists. Order is unspecified.
    pub fn par_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for chunk in self.par_map_shards(CuckooGraph::edges) {
            out.extend(chunk);
        }
        out
    }

    /// Pre-SWAR successor scan routed to the owning shard — the sharded
    /// counterpart of [`CuckooGraph::for_each_successor_scalar`], so the scan
    /// oracle covers the sharded surface too.
    pub fn for_each_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.with_shard(self.shard_index(u), |shard| {
            shard.for_each_successor_scalar(u, f)
        });
    }

    /// Merged structural statistics across all shards (counter sums), taken
    /// under the shared-read discipline — callable while `&self` writers
    /// ingest — and topped with the read-coordinator counters.
    pub fn stats(&self) -> StructureStats {
        let mut merged = StructureStats::default();
        for stats in self.par_map_shards(CuckooGraph::stats) {
            merged.merge(&stats);
        }
        let reads = self.read_counters();
        merged.reader_retries = reads.reader_retries;
        merged.read_pins = reads.read_pins;
        merged.epoch_advances = reads.epoch_advances;
        merged
    }

    /// Compacts every shard's slot arena in parallel (see
    /// [`CuckooGraph::compact_arena`]); returns the total number of freed
    /// blocks reclaimed.
    pub fn compact_arenas(&mut self) -> usize {
        std::thread::scope(|scope| {
            self.slots
                .iter_mut()
                .map(|slot| {
                    let engine = slot.engine_mut();
                    scope.spawn(move || engine.compact_arena())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("shard compaction panicked"))
                .sum()
        })
    }
}

impl Sharded<WeightedCuckooGraph> {
    /// Creates a sharded weighted graph with the paper's default parameters in
    /// every shard (seeds decorrelated per shard).
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, CuckooGraphConfig::default())
    }

    /// Creates a sharded weighted graph from a shared configuration;
    /// `config.concurrent_reads` selects the shared-read discipline.
    pub fn with_config(shards: usize, config: CuckooGraphConfig) -> Self {
        let concurrent = config.concurrent_reads;
        Self::from_fn(shards, |i| {
            WeightedCuckooGraph::with_config(config.clone().with_seed(shard_seed(config.seed, i)))
        })
        .with_concurrent_reads(concurrent)
    }

    /// Total weight across all shards.
    pub fn total_weight(&self) -> u64 {
        self.par_map_shards(WeightedCuckooGraph::total_weight)
            .into_iter()
            .sum()
    }

    /// Pre-SWAR weighted successor scan routed to the owning shard — the
    /// sharded counterpart of
    /// [`WeightedCuckooGraph::for_each_weighted_successor_scalar`].
    pub fn for_each_weighted_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId, u64)) {
        self.with_shard(self.shard_index(u), |shard| {
            shard.for_each_weighted_successor_scalar(u, f)
        });
    }
}

/// Per-shard hash seed derived from the configured base seed.
fn shard_seed(base: u64, shard: usize) -> u64 {
    splitmix64(base ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl<G: DynamicGraph + Send + Sync> Sharded<G> {
    /// Calls `f` for every node, scanning the shards concurrently (shards
    /// partition the source space, so each node is reported exactly once, but
    /// `f` must tolerate concurrent calls — hence `Fn + Sync`). Sequential
    /// callers use the trait's [`DynamicGraph::for_each_node`].
    pub fn par_for_each_node(&self, f: impl Fn(NodeId) + Sync) {
        let concurrent = self.concurrent;
        std::thread::scope(|scope| {
            for slot in &self.slots {
                let f = &f;
                scope.spawn(move || {
                    slot.read(concurrent, |shard| shard.for_each_node(&mut |u| f(u)))
                });
            }
        });
    }

    /// Collects every node by merging per-shard visitor passes that run in
    /// parallel. Order is unspecified.
    pub fn par_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        for chunk in self.par_map_shards(|shard| shard.nodes()) {
            out.extend(chunk);
        }
        out
    }
}

impl<G: MemoryFootprint> MemoryFootprint for Sharded<G> {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (0..self.slots.len())
                .map(|i| self.with_shard(i, MemoryFootprint::memory_bytes))
                .sum::<usize>()
    }
}

impl<G: DynamicGraph + Send + Sync> DynamicGraph for Sharded<G> {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.engine_for_mut(u).insert_edge(u, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.with_shard(self.shard_index(u), |shard| shard.has_edge(u, v))
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.engine_for_mut(u).delete_edge(u, v)
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.with_shard(self.shard_index(u), |shard| shard.for_each_successor(u, f));
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for i in 0..self.slots.len() {
            self.with_shard(i, |shard| shard.for_each_node(&mut *f));
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.with_shard(self.shard_index(u), |shard| shard.out_degree(u))
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        if self.slots.len() == 1 {
            return self.slots[0].engine_mut().insert_edges(edges);
        }
        let groups = self.group_by_shard(edges, |&(u, _)| u);
        self.fan_out_mut(&groups, |shard, group| shard.insert_edges(group))
    }

    fn remove_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        if self.slots.len() == 1 {
            return self.slots[0].engine_mut().remove_edges(edges);
        }
        let groups = self.group_by_shard(edges, |&(u, _)| u);
        self.fan_out_mut(&groups, |shard, group| shard.remove_edges(group))
    }

    fn edge_count(&self) -> usize {
        (0..self.slots.len())
            .map(|i| self.with_shard(i, DynamicGraph::edge_count))
            .sum()
    }

    fn node_count(&self) -> usize {
        (0..self.slots.len())
            .map(|i| self.with_shard(i, DynamicGraph::node_count))
            .sum()
    }

    fn scheme(&self) -> GraphScheme {
        self.with_shard(0, DynamicGraph::scheme)
    }
}

impl<G: DynamicGraph + Send + Sync> ShardedGraph for Sharded<G> {
    fn shard_count(&self) -> usize {
        self.slots.len()
    }

    fn shard_of(&self, u: NodeId) -> usize {
        self.shard_index(u)
    }

    fn with_shard_view(&self, shard: usize, f: &mut dyn FnMut(&(dyn DynamicGraph + Sync))) {
        self.with_shard(shard, |engine| f(engine as &(dyn DynamicGraph + Sync)));
    }
}

impl<G: WeightedDynamicGraph + DynamicGraph + Send + Sync> WeightedDynamicGraph for Sharded<G> {
    fn insert_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64 {
        self.engine_for_mut(u).insert_weighted(u, v, delta)
    }

    fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        self.with_shard(self.shard_index(u), |shard| shard.weight(u, v))
    }

    fn delete_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64 {
        self.engine_for_mut(u).delete_weighted(u, v, delta)
    }

    fn for_each_weighted_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, u64)) {
        self.with_shard(self.shard_index(u), |shard| {
            shard.for_each_weighted_successor(u, f)
        });
    }

    fn insert_weighted_edges(&mut self, edges: &[(NodeId, NodeId, u64)]) -> usize {
        if self.slots.len() == 1 {
            return self.slots[0].engine_mut().insert_weighted_edges(edges);
        }
        let groups = self.group_by_shard(edges, |&(u, _, _)| u);
        self.fan_out_mut(&groups, |shard, group| shard.insert_weighted_edges(group))
    }

    fn distinct_edge_count(&self) -> usize {
        (0..self.slots.len())
            .map(|i| self.with_shard(i, WeightedDynamicGraph::distinct_edge_count))
            .sum()
    }
}

/// Compile-time proof that the sharded types can cross thread boundaries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedCuckooGraph>();
    assert_send_sync::<ShardedWeightedCuckooGraph>();
    assert_send_sync::<ShardReadView<'_, CuckooGraph>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn workload(n: u64) -> Vec<(NodeId, NodeId)> {
        // Deterministic mixed-degree workload: hubs and a long sparse tail.
        (0..n)
            .map(|i| (splitmix64(i) % 97, splitmix64(i ^ 0xabc) % 1_000))
            .collect()
    }

    #[test]
    fn single_edge_operations_route_to_the_owning_shard() {
        let mut g = ShardedCuckooGraph::new(4);
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.out_degree(1), 1);
        assert!(g.delete_edge(1, 2));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.scheme(), GraphScheme::CuckooGraph);
    }

    #[test]
    fn update_shard_applies_single_writes_visible_to_live_views() {
        for concurrent in [true, false] {
            let g = ShardedWeightedCuckooGraph::new(4).with_concurrent_reads(concurrent);
            let view = g.read_view();
            let w1 = g.update_shard(1, |shard| shard.insert_weighted(1, 2, 3));
            let w2 = g.update_shard(1, |shard| shard.insert_weighted(1, 2, 2));
            assert_eq!((w1, w2), (3, 5));
            assert!(view.has_edge(1, 2), "concurrent={concurrent}");
            assert_eq!(view.out_degree(1), 1);
            // The trait-object surface answers the same questions.
            let snap: &dyn GraphReadSnapshot = &view;
            assert_eq!(snap.successors(1), vec![2]);
            assert_eq!((snap.edge_count(), snap.node_count()), (1, 1));
            g.update_shard(1, |shard| shard.delete_edge(1, 2));
            assert!(!view.has_edge(1, 2));
        }
    }

    #[test]
    fn every_edge_lives_in_the_shard_of_its_source() {
        let mut g = ShardedCuckooGraph::new(8);
        let edges = workload(5_000);
        g.insert_edges(&edges);
        for shard_idx in 0..g.shard_count() {
            g.with_shard(shard_idx, |shard| {
                shard.for_each_edge(|u, _| assert_eq!(g.shard_index(u), shard_idx));
            });
        }
    }

    #[test]
    fn batched_insert_matches_serial_graph() {
        let edges = workload(20_000);
        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedCuckooGraph::new(shards);
            let created = sharded.insert_edges(&edges);

            let mut serial = CuckooGraph::new();
            let expected = serial.insert_edges(&edges);

            assert_eq!(created, expected, "{shards} shards: created count");
            assert_eq!(sharded.edge_count(), serial.edge_count());
            assert_eq!(sharded.node_count(), serial.node_count());
            for u in 0..97u64 {
                let a: BTreeSet<NodeId> = sharded.successors(u).into_iter().collect();
                let b: BTreeSet<NodeId> = serial.successors(u).into_iter().collect();
                assert_eq!(a, b, "{shards} shards: successors of {u}");
            }
        }
    }

    #[test]
    fn shared_surface_ingest_matches_exclusive_ingest() {
        let edges = workload(20_000);
        let removals: Vec<(NodeId, NodeId)> = edges.iter().step_by(3).copied().collect();
        for concurrent in [true, false] {
            let shared = ShardedCuckooGraph::with_config(
                4,
                CuckooGraphConfig::default().with_concurrent_reads(concurrent),
            );
            let mut exclusive = ShardedCuckooGraph::new(4);
            assert_eq!(
                shared.ingest_batch(&edges),
                exclusive.insert_edges(&edges),
                "concurrent={concurrent}: created count"
            );
            assert_eq!(
                shared.remove_batch(&removals),
                exclusive.remove_edges(&removals),
                "concurrent={concurrent}: removed count"
            );
            assert_eq!(shared.edge_count(), exclusive.edge_count());
            for u in 0..97u64 {
                let a: BTreeSet<NodeId> = shared.successors(u).into_iter().collect();
                let b: BTreeSet<NodeId> = exclusive.successors(u).into_iter().collect();
                assert_eq!(a, b, "concurrent={concurrent}: successors of {u}");
            }
        }
    }

    #[test]
    fn weighted_shared_surface_ingest_matches_exclusive() {
        let items: Vec<(NodeId, NodeId, u64)> = (0..8_000u64)
            .map(|i| (splitmix64(i) % 50, splitmix64(i ^ 7) % 200, i % 5 + 1))
            .collect();
        let shared = ShardedWeightedCuckooGraph::new(4);
        let mut exclusive = ShardedWeightedCuckooGraph::new(4);
        assert_eq!(
            shared.ingest_weighted_batch(&items),
            exclusive.insert_weighted_edges(&items)
        );
        assert_eq!(shared.total_weight(), exclusive.total_weight());
        assert_eq!(
            shared.distinct_edge_count(),
            exclusive.distinct_edge_count()
        );
    }

    #[test]
    fn read_view_observes_batches_and_never_torn_state() {
        let g = ShardedCuckooGraph::new(4);
        let view = g.read_view();
        assert_eq!(view.edge_count(), 0);
        let edges = workload(5_000);
        g.ingest_batch(&edges);
        // The view sees everything the completed batch inserted.
        for &(u, v) in edges.iter().step_by(17) {
            assert!(view.has_edge(u, v), "view missed committed edge ({u}, {v})");
        }
        assert_eq!(view.edge_count(), g.edge_count());
        assert_eq!(view.node_count(), g.node_count());
        let mut degree = 0usize;
        view.for_each_successor(edges[0].0, &mut |_| degree += 1);
        assert_eq!(degree, view.out_degree(edges[0].0));
        drop(view);
        assert!(g.read_counters().read_pins > 0);
    }

    #[test]
    fn readers_make_progress_while_a_writer_ingests() {
        let g = ShardedCuckooGraph::new(2);
        g.ingest_batch(&workload(2_000));
        let stable: Vec<(NodeId, NodeId)> = {
            let mut edges = Vec::new();
            g.for_each_edge(|u, v| edges.push((u, v)));
            edges
        };
        let churn: Vec<(NodeId, NodeId)> = (0..4_000u64)
            .map(|i| (1_000_000 + splitmix64(i) % 97, splitmix64(i ^ 0x5) % 1_000))
            .collect();
        let writer_done = AtomicBool::new(false);
        let reads = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..10 {
                    g.ingest_batch(&churn);
                    g.remove_batch(&churn);
                }
                writer_done.store(true, Ordering::SeqCst);
            });
            scope.spawn(|| {
                let view = g.read_view();
                let mut first_pass = true;
                // At least one full pass even if the writer wins the whole
                // race on a single-core scheduler.
                while first_pass || !writer_done.load(Ordering::SeqCst) {
                    first_pass = false;
                    for &(u, v) in stable.iter().take(64) {
                        // The stable prefix is never deleted: a reader must
                        // see every one of these edges on every pass.
                        assert!(view.has_edge(u, v), "lost committed edge ({u}, {v})");
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        });
        assert!(reads.load(Ordering::Relaxed) > 0);
        // The churn touched shards under the concurrent protocol: windows
        // opened and closed, so epochs advanced.
        assert!(g.read_counters().epoch_advances > 0);
        // And the churn batches are fully applied or fully removed.
        for &(u, v) in churn.iter().step_by(13) {
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn batched_remove_matches_serial_graph() {
        let edges = workload(10_000);
        let removals: Vec<(NodeId, NodeId)> = edges.iter().step_by(3).copied().collect();
        let mut sharded = ShardedCuckooGraph::new(4);
        let mut serial = CuckooGraph::new();
        sharded.insert_edges(&edges);
        serial.insert_edges(&edges);

        let removed = sharded.remove_edges(&removals);
        let expected = serial.remove_edges(&removals);
        assert_eq!(removed, expected);
        assert_eq!(sharded.edge_count(), serial.edge_count());
        for &(u, v) in &removals {
            assert!(!sharded.has_edge(u, v), "edge ({u}, {v}) survived removal");
        }
    }

    #[test]
    fn parallel_node_scans_agree_with_the_sequential_visitor() {
        let mut g = ShardedCuckooGraph::new(4);
        g.insert_edges(&workload(3_000));

        let mut sequential = Vec::new();
        g.for_each_node(&mut |u| sequential.push(u));
        let seq_set: BTreeSet<NodeId> = sequential.iter().copied().collect();
        assert_eq!(sequential.len(), seq_set.len(), "a node was visited twice");

        let merged: BTreeSet<NodeId> = g.par_nodes().into_iter().collect();
        assert_eq!(merged, seq_set);

        let concurrent = Mutex::new(Vec::new());
        g.par_for_each_node(|u| concurrent.lock().unwrap().push(u));
        let conc_set: BTreeSet<NodeId> = concurrent.into_inner().unwrap().into_iter().collect();
        assert_eq!(conc_set, seq_set);

        let counted = AtomicUsize::new(0);
        g.par_for_each_node(|_| {
            counted.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counted.into_inner(), g.node_count());
    }

    #[test]
    fn par_map_shards_and_par_edges_cover_the_whole_graph() {
        let mut g = ShardedCuckooGraph::new(3);
        let edges = workload(4_000);
        g.insert_edges(&edges);

        let per_shard_edges = g.par_map_shards(CuckooGraph::edge_count);
        assert_eq!(per_shard_edges.len(), 3);
        assert_eq!(per_shard_edges.iter().sum::<usize>(), g.edge_count());

        let collected: BTreeSet<(NodeId, NodeId)> = g.par_edges().into_iter().collect();
        let expected: BTreeSet<(NodeId, NodeId)> = edges.into_iter().collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn sharded_graph_trait_partitions_the_node_space() {
        let mut g = ShardedCuckooGraph::new(4);
        g.insert_edges(&workload(2_000));
        let trait_obj: &dyn ShardedGraph = &g;
        assert_eq!(trait_obj.shard_count(), 4);
        let mut total = 0usize;
        for shard in 0..trait_obj.shard_count() {
            trait_obj.with_shard_view(shard, &mut |view| {
                view.for_each_node(&mut |u| {
                    assert_eq!(trait_obj.shard_of(u), shard, "node {u} in wrong shard");
                });
                total += view.node_count();
            });
        }
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn weighted_sharded_matches_weighted_serial() {
        let items: Vec<(NodeId, NodeId, u64)> = (0..5_000u64)
            .map(|i| (splitmix64(i) % 50, splitmix64(i ^ 7) % 200, i % 5 + 1))
            .collect();
        let mut sharded = ShardedWeightedCuckooGraph::new(4);
        let mut serial = WeightedCuckooGraph::new();
        let created = sharded.insert_weighted_edges(&items);
        let expected = serial.insert_weighted_edges(&items);
        assert_eq!(created, expected);
        assert_eq!(sharded.distinct_edge_count(), serial.distinct_edge_count());
        assert_eq!(sharded.total_weight(), serial.total_weight());
        for u in 0..50u64 {
            let mut a = sharded.weighted_successors(u);
            let mut b = serial.weighted_successors(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "weighted successors of {u}");
        }
        assert_eq!(sharded.delete_weighted(items[0].0, items[0].1, u64::MAX), 0);
    }

    #[test]
    fn merged_stats_and_memory_cover_all_shards() {
        let g = ShardedCuckooGraph::new(4);
        let before = g.memory_bytes();
        g.ingest_batch(&workload(8_000));
        assert!(g.memory_bytes() > before);
        let stats = g.stats();
        assert_eq!(stats.edges, g.edge_count());
        assert_eq!(stats.nodes, g.node_count());
        assert!(stats.lcht_cells > 0);
        // The shared-surface batch ran under the concurrent protocol, so the
        // read/epoch counter block is live.
        assert!(stats.epoch_advances > 0, "no mutation window was counted");
        assert!(stats.read_pins > 0, "stats reads were not pinned");
    }

    #[test]
    fn oracle_mode_counts_no_pins_or_epochs() {
        let g = ShardedCuckooGraph::with_config(
            4,
            CuckooGraphConfig::default().with_concurrent_reads(false),
        );
        assert!(!g.concurrent_reads());
        g.ingest_batch(&workload(3_000));
        let view = g.read_view();
        assert!(view.edge_count() > 0);
        let stats = g.stats();
        assert_eq!(stats.read_pins, 0);
        assert_eq!(stats.reader_retries, 0);
        assert_eq!(stats.epoch_advances, 0);
        assert_eq!(stats.pool_deferred, 0, "oracle mode must not quarantine");
    }

    #[test]
    fn concurrent_ingest_defers_and_reclaims_pool_buffers() {
        // Heavy single-shard churn so TRANSFORMATIONs retire tables inside
        // mutation windows; every quarantined buffer must clear by the end of
        // the final window (the drained-window bound covers its own epoch).
        let g = ShardedCuckooGraph::new(1);
        let edges: Vec<(NodeId, NodeId)> = (0..6_000u64).map(|i| (i % 40, i / 2)).collect();
        g.ingest_batch(&edges);
        g.remove_batch(&edges);
        g.ingest_batch(&edges);
        let stats = g.stats();
        assert!(stats.pool_deferred > 0, "churn never deferred a retirement");
        assert_eq!(
            stats.pool_deferred, stats.pool_reclaimed,
            "a quarantined buffer leaked past the final window"
        );
        assert_eq!(stats.pool_deferred_pending, 0);
    }

    #[test]
    fn clone_copies_engines_but_not_coordinators() {
        let g = ShardedCuckooGraph::new(2);
        g.ingest_batch(&workload(1_000));
        assert!(g.read_counters().epoch_advances > 0);
        let copy = g.clone();
        assert_eq!(copy.edge_count(), g.edge_count());
        assert_eq!(copy.concurrent_reads(), g.concurrent_reads());
        let fresh = copy.read_counters();
        assert_eq!(fresh.epoch_advances, 0, "coordinator state leaked to clone");
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let g = Sharded::from_fn(0, |_| CuckooGraph::new());
        assert_eq!(g.shard_count(), 1);
        assert_eq!(g.shard_index(42), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 shard")]
    fn empty_shard_vec_is_rejected() {
        let _ = Sharded::<CuckooGraph>::from_shards(Vec::new());
    }
}
