//! Sharded CuckooGraph: N independent L-CHT/S-CHT engines partitioned by
//! source-node hash, with batched mutations fanned out to the shards on
//! [`std::thread::scope`].
//!
//! Every edge `⟨u, v⟩` lives entirely inside the shard that owns `u`, so the
//! shards partition the source-node space and never share mutable state: a
//! batched insert groups the batch per shard and moves each group to its
//! shard's thread — no locks anywhere on the hot path. Single-edge operations
//! route to the owning shard and cost one extra hash over the serial engine.
//!
//! Besides the parallel speedup on multi-core machines, the grouped fan-out
//! pays off even on a single core for duplicate-heavy streams (CAIDA-like
//! workloads repeat each source ~30×): each shard's pass touches only its own
//! 1/N-sized tables, so the repeated probes stay cache-resident where the
//! serial engine's working set has long been evicted — the partitioned
//! hash-join effect applied to graph ingest.
//!
//! [`Sharded`] is generic over the shard engine so the same fan-out logic
//! serves the basic ([`ShardedCuckooGraph`]) and weighted
//! ([`ShardedWeightedCuckooGraph`]) variants; anything implementing
//! [`DynamicGraph`] `+ Send` works, which the compile-time assertions in the
//! engine stack (`engine.rs`, `lcht.rs`, `scht.rs`, `cell.rs`, `chain.rs`,
//! `denylist.rs`) guarantee for the CuckooGraph types.
//!
//! The per-shard engines inherit the PR-4 probe path wholesale: every batched
//! group a shard thread settles runs the tagged-bucket scan, per-run hash
//! memoization, and next-key prefetching of [`crate::engine::Engine`]'s batch
//! drivers — the fan-out multiplies that per-shard speedup rather than
//! replacing it. (Shard routing itself hashes `u` with [`splitmix64`] +
//! [`SHARD_SALT`], deliberately decorrelated from the engines' internal
//! bucket hashing, so nothing is shared across the boundary to memoize.)

use crate::config::CuckooGraphConfig;
use crate::graph::CuckooGraph;
use crate::hash::splitmix64;
use crate::stats::StructureStats;
use crate::weighted::WeightedCuckooGraph;
use graph_api::{
    DynamicGraph, GraphScheme, MemoryFootprint, NodeId, ShardedGraph, WeightedDynamicGraph,
};

/// Salt folded into the shard hash so shard routing is independent of the
/// engines' internal Bob-Hash seeds.
const SHARD_SALT: u64 = 0x0005_eade_dc0c_0a75;

/// A graph partitioned into independent shards by source-node hash.
///
/// The concrete CuckooGraph instantiations are [`ShardedCuckooGraph`] and
/// [`ShardedWeightedCuckooGraph`]; the struct itself only asks its shard type
/// for the [`DynamicGraph`] surface (plus [`Send`] to fan batches out across
/// scoped threads, and [`Sync`] for the parallel scans).
#[derive(Debug, Clone)]
pub struct Sharded<G> {
    shards: Vec<G>,
}

/// CuckooGraph, sharded: N independent basic engines.
///
/// ```
/// use cuckoograph::ShardedCuckooGraph;
/// use graph_api::DynamicGraph;
///
/// let mut g = ShardedCuckooGraph::new(4);
/// assert_eq!(g.insert_edges(&[(1, 2), (1, 3), (2, 3), (1, 2)]), 3);
/// assert!(g.has_edge(1, 2));
/// assert_eq!(g.out_degree(1), 2);
/// assert_eq!(g.remove_edges(&[(1, 2), (9, 9)]), 1);
/// assert_eq!(g.edge_count(), 2);
/// ```
pub type ShardedCuckooGraph = Sharded<CuckooGraph>;

/// WeightedCuckooGraph, sharded: N independent weighted engines.
///
/// ```
/// use cuckoograph::ShardedWeightedCuckooGraph;
/// use graph_api::WeightedDynamicGraph;
///
/// let mut g = ShardedWeightedCuckooGraph::new(2);
/// g.insert_weighted_edges(&[(1, 2, 3), (1, 2, 1)]);
/// assert_eq!(g.weight(1, 2), 4);
/// ```
pub type ShardedWeightedCuckooGraph = Sharded<WeightedCuckooGraph>;

impl<G> Sharded<G> {
    /// Wraps pre-built shard engines. Panics if `shards` is empty.
    pub fn from_shards(shards: Vec<G>) -> Self {
        assert!(!shards.is_empty(), "a sharded graph needs at least 1 shard");
        Self { shards }
    }

    /// Builds `shards` engines with `build(shard_index)`.
    pub fn from_fn(shards: usize, build: impl FnMut(usize) -> G) -> Self {
        Self::from_shards((0..shards.max(1)).map(build).collect())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines, in shard order.
    pub fn shards(&self) -> &[G] {
        &self.shards
    }

    /// Index of the shard that owns source node `u`.
    #[inline]
    pub fn shard_index(&self, u: NodeId) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (splitmix64(u ^ SHARD_SALT) as usize) % self.shards.len()
    }

    /// The shard engine owning source node `u`.
    #[inline]
    pub fn shard_for(&self, u: NodeId) -> &G {
        &self.shards[self.shard_index(u)]
    }

    /// Mutable access to the shard engine owning source node `u`.
    #[inline]
    pub fn shard_for_mut(&mut self, u: NodeId) -> &mut G {
        let idx = self.shard_index(u);
        &mut self.shards[idx]
    }

    /// Groups `items` per owning shard, preserving the within-shard order (so
    /// source-sorted batches keep their runs). Two passes: count, then scatter
    /// into exactly-sized buffers.
    fn group_by_shard<T: Copy>(&self, items: &[T], key: impl Fn(&T) -> NodeId) -> Vec<Vec<T>> {
        let mut counts = vec![0usize; self.shards.len()];
        for item in items {
            counts[self.shard_index(key(item))] += 1;
        }
        let mut groups: Vec<Vec<T>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for item in items {
            groups[self.shard_index(key(item))].push(*item);
        }
        groups
    }

    /// Runs `apply(shard, group)` for every non-empty group on its shard's
    /// thread and sums the returned counts. The groups are disjoint and each
    /// thread owns exactly one `&mut` shard, so the fan-out needs no locks.
    fn fan_out_mut<T: Sync>(
        &mut self,
        groups: &[Vec<T>],
        apply: impl Fn(&mut G, &[T]) -> usize + Sync,
    ) -> usize
    where
        G: Send,
    {
        let mut counts = vec![0usize; self.shards.len()];
        std::thread::scope(|scope| {
            for ((shard, group), count) in self.shards.iter_mut().zip(groups).zip(counts.iter_mut())
            {
                if group.is_empty() {
                    continue;
                }
                let apply = &apply;
                scope.spawn(move || *count = apply(shard, group));
            }
        });
        counts.iter().sum()
    }

    /// Runs `f` on every shard concurrently (one scoped thread per shard) and
    /// returns the per-shard results in shard order — the building block for
    /// whole-graph parallel scans.
    pub fn par_map_shards<R: Send>(&self, f: impl Fn(&G) -> R + Sync) -> Vec<R>
    where
        G: Sync,
    {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(|| f(shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard scan panicked"))
                .collect()
        })
    }
}

impl Sharded<CuckooGraph> {
    /// Creates a sharded basic graph with the paper's default parameters in
    /// every shard (seeds decorrelated per shard).
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, CuckooGraphConfig::default())
    }

    /// Creates a sharded basic graph from a shared configuration; each shard
    /// derives its own hash seeds so kick-out behaviour is independent.
    pub fn with_config(shards: usize, config: CuckooGraphConfig) -> Self {
        Self::from_fn(shards, |i| {
            CuckooGraph::with_config(config.clone().with_seed(shard_seed(config.seed, i)))
        })
    }

    /// Calls `f` for every stored edge `⟨u, v⟩` across all shards.
    pub fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        for shard in &self.shards {
            shard.for_each_edge(&mut f);
        }
    }

    /// Collects every stored edge, scanning the shards in parallel and
    /// concatenating the per-shard lists. Order is unspecified.
    pub fn par_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for chunk in self.par_map_shards(CuckooGraph::edges) {
            out.extend(chunk);
        }
        out
    }

    /// Pre-SWAR successor scan routed to the owning shard — the sharded
    /// counterpart of [`CuckooGraph::for_each_successor_scalar`], so the scan
    /// oracle covers the sharded surface too.
    pub fn for_each_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.shard_for(u).for_each_successor_scalar(u, f);
    }

    /// Merged structural statistics across all shards (counter sums).
    pub fn stats(&self) -> StructureStats {
        let mut merged = StructureStats::default();
        for stats in self.par_map_shards(CuckooGraph::stats) {
            merged.nodes += stats.nodes;
            merged.edges += stats.edges;
            merged.lcht_tables += stats.lcht_tables;
            merged.lcht_cells += stats.lcht_cells;
            merged.scht_tables += stats.scht_tables;
            merged.scht_slots += stats.scht_slots;
            merged.l_denylist_len += stats.l_denylist_len;
            merged.s_denylist_len += stats.s_denylist_len;
            merged.lcht_placements += stats.lcht_placements;
            merged.lcht_items += stats.lcht_items;
            merged.scht_placements += stats.scht_placements;
            merged.scht_items += stats.scht_items;
            merged.insertion_failures += stats.insertion_failures;
            merged.expansions += stats.expansions;
            merged.contractions += stats.contractions;
            merged.pool_hits += stats.pool_hits;
            merged.pool_misses += stats.pool_misses;
            merged.pool_retired += stats.pool_retired;
            merged.pool_retained_bytes += stats.pool_retained_bytes;
            merged.arena_blocks += stats.arena_blocks;
            merged.arena_free_blocks += stats.arena_free_blocks;
        }
        merged
    }

    /// Compacts every shard's slot arena in parallel (see
    /// [`CuckooGraph::compact_arena`]); returns the total number of freed
    /// blocks reclaimed.
    pub fn compact_arenas(&mut self) -> usize {
        std::thread::scope(|scope| {
            self.shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.compact_arena()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("shard compaction panicked"))
                .sum()
        })
    }
}

impl Sharded<WeightedCuckooGraph> {
    /// Creates a sharded weighted graph with the paper's default parameters in
    /// every shard (seeds decorrelated per shard).
    pub fn new(shards: usize) -> Self {
        Self::with_config(shards, CuckooGraphConfig::default())
    }

    /// Creates a sharded weighted graph from a shared configuration.
    pub fn with_config(shards: usize, config: CuckooGraphConfig) -> Self {
        Self::from_fn(shards, |i| {
            WeightedCuckooGraph::with_config(config.clone().with_seed(shard_seed(config.seed, i)))
        })
    }

    /// Total weight across all shards.
    pub fn total_weight(&self) -> u64 {
        self.par_map_shards(WeightedCuckooGraph::total_weight)
            .into_iter()
            .sum()
    }

    /// Pre-SWAR weighted successor scan routed to the owning shard — the
    /// sharded counterpart of
    /// [`WeightedCuckooGraph::for_each_weighted_successor_scalar`].
    pub fn for_each_weighted_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId, u64)) {
        self.shard_for(u).for_each_weighted_successor_scalar(u, f);
    }
}

/// Per-shard hash seed derived from the configured base seed.
fn shard_seed(base: u64, shard: usize) -> u64 {
    splitmix64(base ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl<G: DynamicGraph + Send + Sync> Sharded<G> {
    /// Calls `f` for every node, scanning the shards concurrently (shards
    /// partition the source space, so each node is reported exactly once, but
    /// `f` must tolerate concurrent calls — hence `Fn + Sync`). Sequential
    /// callers use the trait's [`DynamicGraph::for_each_node`].
    pub fn par_for_each_node(&self, f: impl Fn(NodeId) + Sync) {
        std::thread::scope(|scope| {
            for shard in &self.shards {
                let f = &f;
                scope.spawn(move || shard.for_each_node(&mut |u| f(u)));
            }
        });
    }

    /// Collects every node by merging per-shard visitor passes that run in
    /// parallel. Order is unspecified.
    pub fn par_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        for chunk in self.par_map_shards(|shard| shard.nodes()) {
            out.extend(chunk);
        }
        out
    }
}

impl<G: MemoryFootprint> MemoryFootprint for Sharded<G> {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .shards
                .iter()
                .map(MemoryFootprint::memory_bytes)
                .sum::<usize>()
    }
}

impl<G: DynamicGraph + Send + Sync> DynamicGraph for Sharded<G> {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.shard_for_mut(u).insert_edge(u, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.shard_for(u).has_edge(u, v)
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.shard_for_mut(u).delete_edge(u, v)
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.shard_for(u).for_each_successor(u, f);
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for shard in &self.shards {
            shard.for_each_node(f);
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.shard_for(u).out_degree(u)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        if self.shards.len() == 1 {
            return self.shards[0].insert_edges(edges);
        }
        let groups = self.group_by_shard(edges, |&(u, _)| u);
        self.fan_out_mut(&groups, |shard, group| shard.insert_edges(group))
    }

    fn remove_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        if self.shards.len() == 1 {
            return self.shards[0].remove_edges(edges);
        }
        let groups = self.group_by_shard(edges, |&(u, _)| u);
        self.fan_out_mut(&groups, |shard, group| shard.remove_edges(group))
    }

    fn edge_count(&self) -> usize {
        self.shards.iter().map(DynamicGraph::edge_count).sum()
    }

    fn node_count(&self) -> usize {
        self.shards.iter().map(DynamicGraph::node_count).sum()
    }

    fn scheme(&self) -> GraphScheme {
        self.shards[0].scheme()
    }
}

impl<G: DynamicGraph + Send + Sync> ShardedGraph for Sharded<G> {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, u: NodeId) -> usize {
        self.shard_index(u)
    }

    fn shard_view(&self, shard: usize) -> &(dyn DynamicGraph + Sync) {
        &self.shards[shard]
    }
}

impl<G: WeightedDynamicGraph + DynamicGraph + Send + Sync> WeightedDynamicGraph for Sharded<G> {
    fn insert_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64 {
        self.shard_for_mut(u).insert_weighted(u, v, delta)
    }

    fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        self.shard_for(u).weight(u, v)
    }

    fn delete_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64 {
        self.shard_for_mut(u).delete_weighted(u, v, delta)
    }

    fn for_each_weighted_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, u64)) {
        self.shard_for(u).for_each_weighted_successor(u, f);
    }

    fn insert_weighted_edges(&mut self, edges: &[(NodeId, NodeId, u64)]) -> usize {
        if self.shards.len() == 1 {
            return self.shards[0].insert_weighted_edges(edges);
        }
        let groups = self.group_by_shard(edges, |&(u, _, _)| u);
        self.fan_out_mut(&groups, |shard, group| shard.insert_weighted_edges(group))
    }

    fn distinct_edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(WeightedDynamicGraph::distinct_edge_count)
            .sum()
    }
}

/// Compile-time proof that the sharded types can cross thread boundaries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedCuckooGraph>();
    assert_send_sync::<ShardedWeightedCuckooGraph>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn workload(n: u64) -> Vec<(NodeId, NodeId)> {
        // Deterministic mixed-degree workload: hubs and a long sparse tail.
        (0..n)
            .map(|i| (splitmix64(i) % 97, splitmix64(i ^ 0xabc) % 1_000))
            .collect()
    }

    #[test]
    fn single_edge_operations_route_to_the_owning_shard() {
        let mut g = ShardedCuckooGraph::new(4);
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert!(g.has_edge(1, 2));
        assert_eq!(g.out_degree(1), 1);
        assert!(g.delete_edge(1, 2));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.scheme(), GraphScheme::CuckooGraph);
    }

    #[test]
    fn every_edge_lives_in_the_shard_of_its_source() {
        let mut g = ShardedCuckooGraph::new(8);
        let edges = workload(5_000);
        g.insert_edges(&edges);
        for (shard_idx, shard) in g.shards().iter().enumerate() {
            shard.for_each_edge(|u, _| assert_eq!(g.shard_index(u), shard_idx));
        }
    }

    #[test]
    fn batched_insert_matches_serial_graph() {
        let edges = workload(20_000);
        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedCuckooGraph::new(shards);
            let created = sharded.insert_edges(&edges);

            let mut serial = CuckooGraph::new();
            let expected = serial.insert_edges(&edges);

            assert_eq!(created, expected, "{shards} shards: created count");
            assert_eq!(sharded.edge_count(), serial.edge_count());
            assert_eq!(sharded.node_count(), serial.node_count());
            for u in 0..97u64 {
                let a: BTreeSet<NodeId> = sharded.successors(u).into_iter().collect();
                let b: BTreeSet<NodeId> = serial.successors(u).into_iter().collect();
                assert_eq!(a, b, "{shards} shards: successors of {u}");
            }
        }
    }

    #[test]
    fn batched_remove_matches_serial_graph() {
        let edges = workload(10_000);
        let removals: Vec<(NodeId, NodeId)> = edges.iter().step_by(3).copied().collect();
        let mut sharded = ShardedCuckooGraph::new(4);
        let mut serial = CuckooGraph::new();
        sharded.insert_edges(&edges);
        serial.insert_edges(&edges);

        let removed = sharded.remove_edges(&removals);
        let expected = serial.remove_edges(&removals);
        assert_eq!(removed, expected);
        assert_eq!(sharded.edge_count(), serial.edge_count());
        for &(u, v) in &removals {
            assert!(!sharded.has_edge(u, v), "edge ({u}, {v}) survived removal");
        }
    }

    #[test]
    fn parallel_node_scans_agree_with_the_sequential_visitor() {
        let mut g = ShardedCuckooGraph::new(4);
        g.insert_edges(&workload(3_000));

        let mut sequential = Vec::new();
        g.for_each_node(&mut |u| sequential.push(u));
        let seq_set: BTreeSet<NodeId> = sequential.iter().copied().collect();
        assert_eq!(sequential.len(), seq_set.len(), "a node was visited twice");

        let merged: BTreeSet<NodeId> = g.par_nodes().into_iter().collect();
        assert_eq!(merged, seq_set);

        let concurrent = Mutex::new(Vec::new());
        g.par_for_each_node(|u| concurrent.lock().unwrap().push(u));
        let conc_set: BTreeSet<NodeId> = concurrent.into_inner().unwrap().into_iter().collect();
        assert_eq!(conc_set, seq_set);

        let counted = AtomicUsize::new(0);
        g.par_for_each_node(|_| {
            counted.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counted.into_inner(), g.node_count());
    }

    #[test]
    fn par_map_shards_and_par_edges_cover_the_whole_graph() {
        let mut g = ShardedCuckooGraph::new(3);
        let edges = workload(4_000);
        g.insert_edges(&edges);

        let per_shard_edges = g.par_map_shards(CuckooGraph::edge_count);
        assert_eq!(per_shard_edges.len(), 3);
        assert_eq!(per_shard_edges.iter().sum::<usize>(), g.edge_count());

        let collected: BTreeSet<(NodeId, NodeId)> = g.par_edges().into_iter().collect();
        let expected: BTreeSet<(NodeId, NodeId)> = edges.into_iter().collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn sharded_graph_trait_partitions_the_node_space() {
        let mut g = ShardedCuckooGraph::new(4);
        g.insert_edges(&workload(2_000));
        let trait_obj: &dyn ShardedGraph = &g;
        assert_eq!(trait_obj.shard_count(), 4);
        let mut total = 0usize;
        for shard in 0..trait_obj.shard_count() {
            let view = trait_obj.shard_view(shard);
            view.for_each_node(&mut |u| {
                assert_eq!(trait_obj.shard_of(u), shard, "node {u} in wrong shard");
            });
            total += view.node_count();
        }
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn weighted_sharded_matches_weighted_serial() {
        let items: Vec<(NodeId, NodeId, u64)> = (0..5_000u64)
            .map(|i| (splitmix64(i) % 50, splitmix64(i ^ 7) % 200, i % 5 + 1))
            .collect();
        let mut sharded = ShardedWeightedCuckooGraph::new(4);
        let mut serial = WeightedCuckooGraph::new();
        let created = sharded.insert_weighted_edges(&items);
        let expected = serial.insert_weighted_edges(&items);
        assert_eq!(created, expected);
        assert_eq!(sharded.distinct_edge_count(), serial.distinct_edge_count());
        assert_eq!(sharded.total_weight(), serial.total_weight());
        for u in 0..50u64 {
            let mut a = sharded.weighted_successors(u);
            let mut b = serial.weighted_successors(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "weighted successors of {u}");
        }
        assert_eq!(sharded.delete_weighted(items[0].0, items[0].1, u64::MAX), 0);
    }

    #[test]
    fn merged_stats_and_memory_cover_all_shards() {
        let mut g = ShardedCuckooGraph::new(4);
        let before = g.memory_bytes();
        g.insert_edges(&workload(8_000));
        assert!(g.memory_bytes() > before);
        let stats = g.stats();
        assert_eq!(stats.edges, g.edge_count());
        assert_eq!(stats.nodes, g.node_count());
        assert!(stats.lcht_cells > 0);
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let g = Sharded::from_fn(0, |_| CuckooGraph::new());
        assert_eq!(g.shard_count(), 1);
        assert_eq!(g.shard_index(42), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1 shard")]
    fn empty_shard_vec_is_rejected() {
        let _ = Sharded::<CuckooGraph>::from_shards(Vec::new());
    }
}
