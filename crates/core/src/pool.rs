//! Shard-local table pooling: recycled slot/tag buffers for cuckoo tables.
//!
//! Every TRANSFORMATION event (chain expansion merge, contraction, collapse
//! back to small slots) drops one or more [`crate::scht::CuckooTable`]s and
//! allocates fresh ones. Before this module, each fresh table cost two heap
//! allocations (one slot array, one tag array — already down from four since
//! the arrays were merged per table); under churn-heavy workloads those
//! resize events fire thousands of times, and the allocator traffic shows up
//! directly in the `resize_churn` benchmarks.
//!
//! A [`TablePool`] is the follow-on to [`crate::scratch::RebuildScratch`]:
//! where the scratch recycles the *drain buffers* of a rebuild, the pool
//! recycles the *table buffers* themselves. A retiring table hands its slot
//! and tag vectors to the pool; the next table allocation takes a pooled pair
//! back, re-sizes it in place (slots re-filled with [`Payload::filler`], tags
//! re-zeroed — a `memset`, not a `malloc`), and only falls back to the
//! allocator on a pool miss.
//!
//! The pool is engine-local (one per [`RebuildScratch`], so one per engine
//! level and one per shard) — no locks, no cross-shard sharing. It is capped
//! at a small number of retained buffer pairs so the recycled capacity cannot
//! silently dominate the memory the structure reports; what it does retain is
//! counted honestly via [`TablePool::retained_bytes`].
//!
//! The pre-change cost shape stays selectable as the live oracle:
//! [`crate::CuckooGraphConfig::with_table_pool`]`(false)` builds every engine
//! scratch with a disabled pool, whose `acquire` always allocates and whose
//! `retire` always drops — exactly the old allocate-per-table behaviour. The
//! `perf_smoke` pool guard and the `pool_arena_model` property tests compare
//! the two paths; they are structurally bit-identical (the pool only changes
//! where buffers come from, never what they contain).

use crate::payload::Payload;

/// Maximum number of retired buffer pairs a pool holds. A chain has at most
/// `R` tables and rebuild events retire tables one event at a time, so a
/// handful of entries already captures the steady state; the cap keeps the
/// retained capacity bounded and honestly small.
const MAX_POOLED: usize = 8;

/// Counter snapshot of a pool's activity, summed across an engine's pools for
/// [`crate::StructureStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Table allocations served from a recycled buffer pair.
    pub hits: u64,
    /// Table allocations that fell through to the allocator.
    pub misses: u64,
    /// Tables retired into the pool (or dropped, when disabled/full).
    pub retired: u64,
    /// Bytes currently held by pooled (idle) buffer pairs.
    pub retained_bytes: usize,
}

impl PoolStats {
    /// Accumulates another snapshot into this one (sharded stats merge).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.retired += other.retired;
        self.retained_bytes += other.retained_bytes;
    }
}

/// A bounded free-list of retired `(slots, tags)` buffer pairs.
#[derive(Debug, Clone)]
pub struct TablePool<T> {
    entries: Vec<(Vec<T>, Vec<u8>)>,
    enabled: bool,
    hits: u64,
    misses: u64,
    retired: u64,
}

impl<T: Payload> TablePool<T> {
    /// An active pool (the production configuration).
    pub fn enabled() -> Self {
        Self {
            entries: Vec::new(),
            enabled: true,
            hits: 0,
            misses: 0,
            retired: 0,
        }
    }

    /// A disabled pool: every `acquire` allocates, every `retire` drops — the
    /// pre-pool reference behaviour, selected via
    /// [`crate::CuckooGraphConfig::with_table_pool`]`(false)`.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::enabled()
        }
    }

    /// True when retired buffers are actually recycled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets whether the pool recycles. Turning a pool off releases everything
    /// it retained.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.entries = Vec::new();
        }
    }

    /// Hands out a `(slots, tags)` pair of exactly `total` entries, with every
    /// slot set to [`Payload::filler`] and every tag zeroed. Reuses a pooled
    /// pair when one is available (resize-in-place, no allocation when the
    /// recycled capacity suffices), otherwise allocates fresh.
    pub fn acquire(&mut self, total: usize) -> (Vec<T>, Vec<u8>) {
        if let Some((mut slots, mut tags)) = self.entries.pop() {
            self.hits += 1;
            // Retired tables were drained first, so the buffers arrive
            // all-filler / all-zero; clear-and-resize renormalises the length
            // (and defends against a hand-retired dirty pair) without giving
            // the capacity back to the allocator.
            slots.clear();
            slots.resize(total, T::filler());
            tags.clear();
            tags.resize(total, 0);
            // A small table born from a much larger retired buffer would pin
            // that capacity for its whole lifetime (tables report capacity,
            // not length, to the memory experiments). Cap the ride-along at
            // 4× the request; pathological mismatches pay one shrink.
            if slots.capacity() > 4 * total.max(1) {
                slots.shrink_to(total);
                tags.shrink_to(total);
            }
            (slots, tags)
        } else {
            self.misses += 1;
            (vec![T::filler(); total], vec![0u8; total])
        }
    }

    /// Takes ownership of a retiring table's buffers. Disabled or full pools
    /// drop them (the reference behaviour); otherwise they wait for the next
    /// [`TablePool::acquire`].
    pub fn retire(&mut self, slots: Vec<T>, tags: Vec<u8>) {
        self.retired += 1;
        if self.enabled && self.entries.len() < MAX_POOLED {
            self.entries.push((slots, tags));
        }
    }

    /// Number of idle buffer pairs currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes held by the idle pooled buffers — counted into the engine's
    /// memory reporting so pooling cannot hide capacity from Figure 9.
    pub fn retained_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(s, t)| s.capacity() * std::mem::size_of::<T>() + t.capacity())
            .sum()
    }

    /// Counter snapshot for stats reporting.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            retired: self.retired,
            retained_bytes: self.retained_bytes(),
        }
    }
}

impl<T: Payload> Default for TablePool<T> {
    fn default() -> Self {
        Self::enabled()
    }
}

/// Compile-time proof the pool can cross the sharded fan-out's thread
/// boundaries inside an engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TablePool<graph_api::NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use graph_api::NodeId;

    #[test]
    fn acquire_miss_then_hit_recycles_capacity() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        let (slots, tags) = pool.acquire(64);
        assert_eq!(slots.len(), 64);
        assert_eq!(tags.len(), 64);
        assert!(slots.iter().all(|&s| s == NodeId::filler()));
        assert!(tags.iter().all(|&t| t == 0));
        assert_eq!(pool.stats().misses, 1);

        pool.retire(slots, tags);
        assert_eq!(pool.len(), 1);
        assert!(pool.retained_bytes() >= 64 * std::mem::size_of::<NodeId>() + 64);

        // Differently sized re-acquire still reuses the buffers.
        let (slots, tags) = pool.acquire(32);
        assert_eq!(slots.len(), 32);
        assert_eq!(tags.len(), 32);
        assert!(slots.capacity() >= 64, "recycled capacity was released");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.retired), (1, 1, 1));
        assert!(pool.is_empty());
    }

    #[test]
    fn acquire_rezeroes_dirty_buffers() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        pool.retire(vec![7; 16], vec![0xAA; 16]);
        let (slots, tags) = pool.acquire(16);
        assert!(slots.iter().all(|&s| s == 0));
        assert!(tags.iter().all(|&t| t == 0));
    }

    #[test]
    fn disabled_pool_never_retains() {
        let mut pool: TablePool<NodeId> = TablePool::disabled();
        assert!(!pool.is_enabled());
        let (slots, tags) = pool.acquire(8);
        pool.retire(slots, tags);
        assert!(pool.is_empty());
        assert_eq!(pool.retained_bytes(), 0);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.retired), (0, 1, 1));
    }

    #[test]
    fn pool_is_capped() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        for _ in 0..2 * MAX_POOLED {
            pool.retire(vec![0; 8], vec![0; 8]);
        }
        assert_eq!(pool.len(), MAX_POOLED);
        assert_eq!(pool.stats().retired, 2 * MAX_POOLED as u64);
    }

    #[test]
    fn disabling_releases_retained_buffers() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        pool.retire(vec![0; 8], vec![0; 8]);
        pool.set_enabled(false);
        assert!(pool.is_empty());
        assert_eq!(pool.retained_bytes(), 0);
    }
}
