//! Shard-local table pooling: recycled slot/tag buffers for cuckoo tables.
//!
//! Every TRANSFORMATION event (chain expansion merge, contraction, collapse
//! back to small slots) drops one or more [`crate::scht::CuckooTable`]s and
//! allocates fresh ones. Before this module, each fresh table cost two heap
//! allocations (one slot array, one tag array — already down from four since
//! the arrays were merged per table); under churn-heavy workloads those
//! resize events fire thousands of times, and the allocator traffic shows up
//! directly in the `resize_churn` benchmarks.
//!
//! A [`TablePool`] is the follow-on to [`crate::scratch::RebuildScratch`]:
//! where the scratch recycles the *drain buffers* of a rebuild, the pool
//! recycles the *table buffers* themselves. A retiring table hands its slot
//! and tag vectors to the pool — already drained back to all-filler /
//! all-zero by the rebuild paths — and the next table allocation takes a
//! pooled pair back, adjusting only its length (no re-`memset`, no `malloc`),
//! falling back to the allocator on a pool miss.
//!
//! The pool is engine-local (one per [`RebuildScratch`], so one per engine
//! level and one per shard) — no locks, no cross-shard sharing. It is capped
//! at a small number of retained buffer pairs so the recycled capacity cannot
//! silently dominate the memory the structure reports; what it does retain is
//! counted honestly via [`TablePool::retained_bytes`].
//!
//! The pre-change cost shape stays selectable as the live oracle:
//! [`crate::CuckooGraphConfig::with_table_pool`]`(false)` builds every engine
//! scratch with a disabled pool, whose `acquire` always allocates and whose
//! `retire` always drops — exactly the old allocate-per-table behaviour. The
//! `perf_smoke` pool guard and the `pool_arena_model` property tests compare
//! the two paths; they are structurally bit-identical (the pool only changes
//! where buffers come from, never what they contain).

use crate::payload::Payload;

/// Maximum number of retired buffer pairs a pool holds. A chain has at most
/// `R` tables and rebuild events retire tables one event at a time, so a
/// handful of entries already captures the steady state; the cap keeps the
/// retained capacity bounded and honestly small.
const MAX_POOLED: usize = 8;

/// Counter snapshot of a pool's activity, summed across an engine's pools for
/// [`crate::StructureStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Table allocations served from a recycled buffer pair.
    pub hits: u64,
    /// Table allocations that fell through to the allocator.
    pub misses: u64,
    /// Tables retired into the pool (or dropped, when disabled/full).
    pub retired: u64,
    /// Retirements quarantined behind an epoch stamp instead of entering the
    /// free list directly (cumulative; see [`TablePool::begin_deferred`]).
    pub deferred: u64,
    /// Quarantined buffers released back into circulation after their epoch
    /// cleared the reclaim bound (cumulative).
    pub reclaimed: u64,
    /// Buffers currently parked in the quarantine, awaiting an epoch advance.
    pub deferred_pending: usize,
    /// Bytes currently held by pooled (idle) buffer pairs, including the
    /// quarantine.
    pub retained_bytes: usize,
}

impl PoolStats {
    /// Accumulates another snapshot into this one (sharded stats merge).
    pub fn merge(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.retired += other.retired;
        self.deferred += other.deferred;
        self.reclaimed += other.reclaimed;
        self.deferred_pending += other.deferred_pending;
        self.retained_bytes += other.retained_bytes;
    }
}

/// A bounded free-list of retired `(slots, tags)` buffer pairs, with an
/// epoch-stamped quarantine for retirements that happen inside a concurrent
/// mutation window (see [`crate::epoch`]): those buffers only re-enter
/// circulation once [`TablePool::reclaim`] is called with a bound proving no
/// reader epoch can still reference them.
#[derive(Debug, Clone)]
pub struct TablePool<T> {
    entries: Vec<(Vec<T>, Vec<u8>)>,
    /// Epoch-stamped quarantined retirements (`(stamp, slots, tags)`),
    /// oldest first. Never served by [`TablePool::acquire`].
    quarantine: Vec<(u64, Vec<T>, Vec<u8>)>,
    enabled: bool,
    /// When true, retirements are stamped with `epoch` and parked in the
    /// quarantine instead of entering the free list.
    defer: bool,
    /// Stamp applied to deferred retirements (the open window's epoch).
    epoch: u64,
    hits: u64,
    misses: u64,
    retired: u64,
    deferred: u64,
    reclaimed: u64,
}

impl<T: Payload> TablePool<T> {
    /// An active pool (the production configuration).
    pub fn enabled() -> Self {
        Self {
            entries: Vec::new(),
            quarantine: Vec::new(),
            enabled: true,
            defer: false,
            epoch: 0,
            hits: 0,
            misses: 0,
            retired: 0,
            deferred: 0,
            reclaimed: 0,
        }
    }

    /// A disabled pool: every `acquire` allocates, every `retire` drops — the
    /// pre-pool reference behaviour, selected via
    /// [`crate::CuckooGraphConfig::with_table_pool`]`(false)`.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::enabled()
        }
    }

    /// True when retired buffers are actually recycled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets whether the pool recycles. Turning a pool off releases everything
    /// it retained, including the quarantine (the pool owns those buffers
    /// outright — deferral only delays *recycling*, never frees early, so
    /// dropping them here is always safe).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.entries = Vec::new();
            self.quarantine = Vec::new();
        }
    }

    /// Enters deferred-retire mode: until [`TablePool::end_deferred`], every
    /// retirement is stamped with `epoch` (the shard's open mutation-window
    /// epoch) and parked in the quarantine instead of the free list, so a
    /// buffer retired by a TRANSFORMATION cannot be rewritten while a reader
    /// pinned at an older epoch might still scan it.
    pub fn begin_deferred(&mut self, epoch: u64) {
        self.defer = true;
        self.epoch = epoch;
    }

    /// Releases every quarantined buffer whose stamp is strictly below
    /// `safe_epoch` (the coordinator's reclaim bound: no active reader pin can
    /// observe an epoch below it) into the free list, subject to the usual
    /// [`MAX_POOLED`] cap. Returns the number of buffers released.
    pub fn reclaim(&mut self, safe_epoch: u64) -> usize {
        let mut released = 0;
        // Oldest stamps sit at the front; stop at the first survivor.
        while self
            .quarantine
            .first()
            .is_some_and(|(stamp, _, _)| *stamp < safe_epoch)
        {
            let (_, slots, tags) = self.quarantine.remove(0);
            released += 1;
            self.reclaimed += 1;
            if self.entries.len() < MAX_POOLED {
                self.entries.push((slots, tags));
            }
        }
        released
    }

    /// Leaves deferred-retire mode, running a final [`TablePool::reclaim`] at
    /// `safe_epoch`. Buffers whose stamp has not yet cleared the bound stay
    /// quarantined for the next window. Returns the number released.
    pub fn end_deferred(&mut self, safe_epoch: u64) -> usize {
        self.defer = false;
        self.reclaim(safe_epoch)
    }

    /// Hands out a `(slots, tags)` pair of exactly `total` entries, with every
    /// slot set to [`Payload::filler`] and every tag zeroed. Reuses a pooled
    /// pair when one is available (resize-in-place, no allocation when the
    /// recycled capacity suffices), otherwise allocates fresh.
    ///
    /// A hit renormalises only the *length*: retirees arrive drained —
    /// all-filler slots, all-zero tags, the [`drain_into`] contract every
    /// table retire path runs — so truncating drops trailing fillers and
    /// growing writes just the missing suffix. (An earlier version re-cleared
    /// the whole pair defensively, which made every hit pay the same `memset`
    /// a miss gets from `calloc` — pooling could only lose to the allocator's
    /// own free-list. The invariant is debug-asserted instead.) Callers that
    /// retire *dirty* buffers must pair with [`TablePool::acquire_raw`] on a
    /// pool of their own, as the scan-segment arena does.
    ///
    /// [`drain_into`]: crate::scht::CuckooTable::drain_into
    pub fn acquire(&mut self, total: usize) -> (Vec<T>, Vec<u8>) {
        let (slots, tags) = self.acquire_raw(total);
        debug_assert!(
            tags.iter().all(|&t| t == 0),
            "pooled buffers must be retired drained (all-zero tags)"
        );
        (slots, tags)
    }

    /// Like [`TablePool::acquire`], but entry contents are unspecified beyond
    /// what the retiree left behind: only the length (`total`) and, for any
    /// grown suffix, filler/zero initialisation are guaranteed. For callers
    /// that track their own fill level and write every entry before reading
    /// it — the scan segments — so their retirees skip draining entirely.
    ///
    /// Selection is best-fit, not LIFO: the pair with the smallest capacity
    /// that still holds `total` without reallocating, falling back to the
    /// largest pair when none suffices. A chain churns tables of several
    /// sizes through one pool, and blindly popping the most recent retiree
    /// made mismatches routine — an undersized pair pays a grow-`realloc`
    /// (allocate + free, strictly worse than a pool miss) and an oversized
    /// one trips the 4× capacity cap below into a shrink-`realloc`. Scanning
    /// the at-most-[`MAX_POOLED`] entries costs a few compares.
    pub fn acquire_raw(&mut self, total: usize) -> (Vec<T>, Vec<u8>) {
        if let Some((mut slots, mut tags)) = self.take_best_fit(total) {
            self.hits += 1;
            debug_assert_eq!(slots.len(), tags.len(), "pooled pair length skew");
            if slots.len() > total {
                slots.truncate(total);
                tags.truncate(total);
            } else {
                slots.resize(total, T::filler());
                tags.resize(total, 0);
            }
            // A small table born from a much larger retired buffer would pin
            // that capacity for its whole lifetime (tables report capacity,
            // not length, to the memory experiments). Cap the ride-along at
            // 4× the request; pathological mismatches pay one shrink.
            if slots.capacity() > 4 * total.max(1) {
                slots.shrink_to(total);
                tags.shrink_to(total);
            }
            (slots, tags)
        } else {
            self.misses += 1;
            (vec![T::filler(); total], vec![0u8; total])
        }
    }

    /// Removes and returns the best-fitting pooled pair for a `total`-entry
    /// request: the smallest capacity that already holds `total`, else the
    /// largest available (which minimises the grow-`realloc`).
    fn take_best_fit(&mut self, total: usize) -> Option<(Vec<T>, Vec<u8>)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (s, _))| {
                let cap = s.capacity();
                if cap >= total {
                    (0, cap)
                } else {
                    (1, usize::MAX - cap)
                }
            })
            .map(|(i, _)| i);
        best.map(|i| self.entries.swap_remove(i))
    }

    /// Single-buffer variant of [`TablePool::acquire_raw`] for callers whose
    /// storage is one `Vec<T>` (the scan segments pack ids and tombstone
    /// bitmap into a single buffer). Pooled pairs acquired this way carry an
    /// empty tags vector, so recycling through this entry point never touches
    /// a byte of tag storage.
    ///
    /// The ride-along capacity cap is 2× here, tighter than `acquire_raw`'s
    /// 4×: segments live for the whole life of a high-degree cell and their
    /// *capacity* is what the memory experiments charge, so a small segment
    /// born from a big retiree would carry the slack indefinitely — across a
    /// population of segments that slack dominated the arena's footprint.
    /// Tables are shorter-lived (every TRANSFORMATION replaces them), so the
    /// looser bound is the better trade there.
    pub fn acquire_ids(&mut self, total: usize) -> Vec<T> {
        if let Some((mut slots, _tags)) = self.take_best_fit(total) {
            self.hits += 1;
            if slots.len() > total {
                slots.truncate(total);
            } else {
                slots.resize(total, T::filler());
            }
            if slots.capacity() > 2 * total.max(1) {
                slots.shrink_to(total);
            }
            slots
        } else {
            self.misses += 1;
            vec![T::filler(); total]
        }
    }

    /// Retires a single buffer (see [`TablePool::acquire_ids`]); stored as a
    /// pair with an empty, allocation-free tags vector so the free list and
    /// quarantine machinery are shared with the two-buffer path.
    pub fn retire_ids(&mut self, ids: Vec<T>) {
        self.retire(ids, Vec::new());
    }

    /// Takes ownership of a retiring table's buffers. Disabled or full pools
    /// drop them (the reference behaviour); otherwise they wait for the next
    /// [`TablePool::acquire`] — or, in deferred mode, sit stamped in the
    /// quarantine until an epoch advance proves no concurrent reader can
    /// still be scanning them.
    pub fn retire(&mut self, slots: Vec<T>, tags: Vec<u8>) {
        self.retired += 1;
        if !self.enabled {
            return;
        }
        if self.defer {
            // The quarantine shares the free list's bound: together they hold
            // at most 2×MAX_POOLED pairs, so deferral cannot turn the pool
            // into an unbounded memory sink under pathological churn. The
            // buffers themselves are dropped when over cap — dropping is
            // always safe (the table already published its replacement; only
            // *recycling into a new table* must wait for the epoch).
            if self.quarantine.len() < MAX_POOLED {
                self.deferred += 1;
                self.quarantine.push((self.epoch, slots, tags));
            }
        } else if self.entries.len() < MAX_POOLED {
            self.entries.push((slots, tags));
        }
    }

    /// Number of idle buffer pairs currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of quarantined buffer pairs still awaiting an epoch advance.
    pub fn deferred_pending(&self) -> usize {
        self.quarantine.len()
    }

    /// Bytes held by the idle pooled buffers — free list *and* quarantine —
    /// counted into the engine's memory reporting so pooling cannot hide
    /// capacity from Figure 9.
    pub fn retained_bytes(&self) -> usize {
        let free: usize = self
            .entries
            .iter()
            .map(|(s, t)| s.capacity() * std::mem::size_of::<T>() + t.capacity())
            .sum();
        let parked: usize = self
            .quarantine
            .iter()
            .map(|(_, s, t)| s.capacity() * std::mem::size_of::<T>() + t.capacity())
            .sum();
        free + parked
    }

    /// Counter snapshot for stats reporting.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            retired: self.retired,
            deferred: self.deferred,
            reclaimed: self.reclaimed,
            deferred_pending: self.quarantine.len(),
            retained_bytes: self.retained_bytes(),
        }
    }
}

impl<T: Payload> Default for TablePool<T> {
    fn default() -> Self {
        Self::enabled()
    }
}

/// Compile-time proof the pool can cross the sharded fan-out's thread
/// boundaries inside an engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TablePool<graph_api::NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use graph_api::NodeId;

    #[test]
    fn acquire_miss_then_hit_recycles_capacity() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        let (slots, tags) = pool.acquire(64);
        assert_eq!(slots.len(), 64);
        assert_eq!(tags.len(), 64);
        assert!(slots.iter().all(|&s| s == NodeId::filler()));
        assert!(tags.iter().all(|&t| t == 0));
        assert_eq!(pool.stats().misses, 1);

        pool.retire(slots, tags);
        assert_eq!(pool.len(), 1);
        assert!(pool.retained_bytes() >= 64 * std::mem::size_of::<NodeId>() + 64);

        // Differently sized re-acquire still reuses the buffers.
        let (slots, tags) = pool.acquire(32);
        assert_eq!(slots.len(), 32);
        assert_eq!(tags.len(), 32);
        assert!(slots.capacity() >= 64, "recycled capacity was released");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.retired), (1, 1, 1));
        assert!(pool.is_empty());
    }

    #[test]
    fn acquire_reuses_drained_buffers_without_reclearing() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        // A drained retiree (all-filler / all-zero, the drain_into contract).
        pool.retire(vec![NodeId::filler(); 16], vec![0; 16]);
        // Shrinking reuse truncates; the survivors are still clean.
        let (slots, tags) = pool.acquire(8);
        assert_eq!((slots.len(), tags.len()), (8, 8));
        assert!(slots.iter().all(|&s| s == NodeId::filler()));
        assert!(tags.iter().all(|&t| t == 0));
        // Growing reuse writes just the missing suffix.
        pool.retire(slots, tags);
        let (slots, tags) = pool.acquire(12);
        assert_eq!((slots.len(), tags.len()), (12, 12));
        assert!(slots.iter().all(|&s| s == NodeId::filler()));
        assert!(tags.iter().all(|&t| t == 0));
    }

    #[test]
    fn raw_acquire_keeps_retiree_contents_but_normalises_length() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        // Raw pools (the scan-segment arena) retire dirty buffers; the raw
        // acquire only guarantees the length and initialised memory.
        pool.retire(vec![7; 16], vec![0xAA; 16]);
        let (slots, tags) = pool.acquire_raw(10);
        assert_eq!((slots.len(), tags.len()), (10, 10));
        pool.retire(slots, tags);
        let (slots, tags) = pool.acquire_raw(14);
        assert_eq!((slots.len(), tags.len()), (14, 14));
        // The grown suffix past the retiree's length is filler/zero.
        assert!(slots[10..].iter().all(|&s| s == NodeId::filler()));
        assert!(tags[10..].iter().all(|&t| t == 0));
    }

    #[test]
    fn ids_only_path_recycles_without_tag_storage() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        let ids = pool.acquire_ids(32);
        assert_eq!(ids.len(), 32);
        assert_eq!(pool.stats().misses, 1);
        pool.retire_ids(ids);
        assert_eq!(pool.len(), 1);
        // Only the id buffer's bytes are retained — no tag allocation rides
        // along on this path.
        assert_eq!(pool.retained_bytes(), 32 * std::mem::size_of::<NodeId>());
        let ids = pool.acquire_ids(16);
        assert_eq!(ids.len(), 16);
        assert!(ids.capacity() >= 32, "recycled capacity was released");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn disabled_pool_never_retains() {
        let mut pool: TablePool<NodeId> = TablePool::disabled();
        assert!(!pool.is_enabled());
        let (slots, tags) = pool.acquire(8);
        pool.retire(slots, tags);
        assert!(pool.is_empty());
        assert_eq!(pool.retained_bytes(), 0);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.retired), (0, 1, 1));
    }

    #[test]
    fn pool_is_capped() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        for _ in 0..2 * MAX_POOLED {
            pool.retire(vec![0; 8], vec![0; 8]);
        }
        assert_eq!(pool.len(), MAX_POOLED);
        assert_eq!(pool.stats().retired, 2 * MAX_POOLED as u64);
    }

    #[test]
    fn disabling_releases_retained_buffers() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        pool.retire(vec![0; 8], vec![0; 8]);
        pool.begin_deferred(3);
        pool.retire(vec![0; 8], vec![0; 8]);
        pool.set_enabled(false);
        assert!(pool.is_empty());
        assert_eq!(pool.deferred_pending(), 0);
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn deferred_retires_are_quarantined_until_the_epoch_clears() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        pool.begin_deferred(5);
        pool.retire(vec![0; 16], vec![0; 16]);
        // Quarantined, counted in memory, but never served to acquire.
        assert_eq!(pool.deferred_pending(), 1);
        assert!(pool.is_empty());
        assert!(pool.retained_bytes() >= 16 * std::mem::size_of::<NodeId>() + 16);
        let (slots, _) = pool.acquire(16);
        assert!(
            pool.stats().hits == 0,
            "acquire must not raid the quarantine"
        );
        drop(slots);

        // A reclaim bound equal to the stamp does NOT release (a reader pinned
        // at epoch 5 may still be scanning); the bound must move past it.
        assert_eq!(pool.reclaim(5), 0);
        assert_eq!(pool.deferred_pending(), 1);
        assert_eq!(pool.reclaim(6), 1);
        assert_eq!(pool.deferred_pending(), 0);
        assert_eq!(pool.len(), 1, "reclaimed buffer re-enters the free list");
        let s = pool.stats();
        assert_eq!((s.deferred, s.reclaimed, s.deferred_pending), (1, 1, 0));
    }

    #[test]
    fn end_deferred_restores_direct_retires_and_keeps_survivors_parked() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        pool.begin_deferred(1);
        pool.retire(vec![0; 8], vec![0; 8]); // stamp 1
        pool.begin_deferred(2);
        pool.retire(vec![0; 8], vec![0; 8]); // stamp 2
                                             // Bound 2 clears stamp 1 only; stamp 2 survives across the window.
        assert_eq!(pool.end_deferred(2), 1);
        assert_eq!(pool.deferred_pending(), 1);
        // Back in direct mode: retires hit the free list immediately.
        pool.retire(vec![0; 8], vec![0; 8]);
        assert_eq!(pool.len(), 2);
        // The straggler clears once the bound finally advances.
        assert_eq!(pool.reclaim(3), 1);
        assert_eq!(pool.deferred_pending(), 0);
        assert_eq!(pool.stats().reclaimed, 2);
    }

    #[test]
    fn quarantine_is_capped_independently_of_the_free_list() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        pool.begin_deferred(1);
        for _ in 0..2 * MAX_POOLED {
            pool.retire(vec![0; 8], vec![0; 8]);
        }
        assert_eq!(pool.deferred_pending(), MAX_POOLED);
        assert_eq!(pool.stats().deferred, MAX_POOLED as u64);
    }
}
