//! The extended version of CuckooGraph (§ III-B): duplicate edges folded into
//! per-edge weights, designed for streaming scenarios (CAIDA, StackOverflow,
//! WikiTalk all contain repeated edges).

use crate::config::CuckooGraphConfig;
use crate::engine::Engine;
use crate::payload::WeightedSlot;
use crate::stats::StructureStats;
use graph_api::{
    DynamicGraph, EdgeExport, EdgeImport, EdgeRecord, GraphScheme, MemoryFootprint, NodeId,
    WeightedDynamicGraph, WeightedEdge,
};

/// CuckooGraph, extended (weighted) version.
///
/// Each small slot stores `⟨v, w⟩` instead of just `v`, so the inline capacity
/// of Part 2 is `R` slots rather than `2R` (§ III-B). Re-inserting an existing
/// edge increments its weight; deleting decrements and removes at zero.
///
/// ```
/// use cuckoograph::WeightedCuckooGraph;
/// use graph_api::WeightedDynamicGraph;
///
/// let mut g = WeightedCuckooGraph::new();
/// assert_eq!(g.insert_weighted(1, 2, 1), 1);
/// assert_eq!(g.insert_weighted(1, 2, 1), 2); // duplicate edge: weight bump
/// assert_eq!(g.weight(1, 2), 2);
/// assert_eq!(g.delete_weighted(1, 2, 2), 0); // weight hits zero: edge removed
/// assert_eq!(g.weight(1, 2), 0);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedCuckooGraph {
    engine: Engine<WeightedSlot>,
}

impl WeightedCuckooGraph {
    /// Creates a weighted graph with the paper's default parameters.
    pub fn new() -> Self {
        Self::with_config(CuckooGraphConfig::default())
    }

    /// Creates a weighted graph with a custom configuration.
    pub fn with_config(config: CuckooGraphConfig) -> Self {
        let small_slots = config.weighted_small_slots();
        Self {
            engine: Engine::new(config, small_slots),
        }
    }

    /// The configuration this graph runs with.
    pub fn config(&self) -> &CuckooGraphConfig {
        self.engine.config()
    }

    /// Structural statistics and instrumentation counters.
    pub fn stats(&self) -> StructureStats {
        self.engine.stats()
    }

    /// Collects every stored weighted edge. Order is unspecified.
    pub fn weighted_edges(&self) -> Vec<WeightedEdge> {
        let mut out = Vec::with_capacity(self.engine.edge_count());
        self.engine
            .for_each_edge(|u, slot| out.push(WeightedEdge::new(u, slot.v, slot.w)));
        out
    }

    /// Total weight across all edges (the number of raw stream items absorbed,
    /// when every insertion uses `delta = 1`).
    pub fn total_weight(&self) -> u64 {
        let mut sum = 0;
        self.engine.for_each_edge(|_, slot| sum += slot.w);
        sum
    }

    /// Pre-SWAR weighted successor scan (slot-by-slot table walk) — the
    /// scalar oracle counterpart of
    /// [`WeightedDynamicGraph::for_each_weighted_successor`].
    pub fn for_each_weighted_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId, u64)) {
        self.engine
            .for_each_payload_scalar(u, |slot| f(slot.v, slot.w));
    }

    /// Pre-SWAR successor scan — see
    /// [`CuckooGraph::for_each_successor_scalar`](crate::CuckooGraph::for_each_successor_scalar).
    pub fn for_each_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.engine.for_each_payload_scalar(u, |slot| f(slot.v));
    }

    /// Compacts the engine's slot arena — see
    /// [`CuckooGraph::compact_arena`](crate::CuckooGraph::compact_arena).
    pub fn compact_arena(&mut self) -> usize {
        self.engine.compact_arena()
    }
}

impl Default for WeightedCuckooGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::epoch::ConcurrentEngine for WeightedCuckooGraph {
    fn begin_concurrent_write(&mut self, epoch: u64) {
        self.engine.begin_concurrent_write(epoch);
    }

    fn end_concurrent_write(&mut self, safe_epoch: u64) -> usize {
        self.engine.end_concurrent_write(safe_epoch)
    }
}

impl MemoryFootprint for WeightedCuckooGraph {
    fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }
}

impl EdgeExport for WeightedCuckooGraph {
    fn for_each_edge_record(&self, f: &mut dyn FnMut(EdgeRecord)) {
        self.engine
            .for_each_edge(|u, slot| f(EdgeRecord::weighted(u, slot.v, slot.w)));
    }

    fn edge_record_count(&self) -> usize {
        self.engine.edge_count()
    }
}

impl EdgeImport for WeightedCuckooGraph {
    fn import_edge_records(&mut self, records: &[EdgeRecord]) {
        self.engine.insert_batch(
            records,
            |r| (r.source, r.target),
            |r| WeightedSlot {
                v: r.target,
                w: r.weight,
            },
            |r, slot| slot.w += r.weight,
        );
    }
}

impl WeightedDynamicGraph for WeightedCuckooGraph {
    fn insert_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64 {
        // § III-B insertion: an existing item bumps its weight and returns.
        // `upsert` resolves the `u` cell once for the probe and the insert.
        let mut new_weight = delta;
        self.engine.upsert(
            u,
            v,
            || WeightedSlot { v, w: delta },
            |slot| {
                slot.w += delta;
                new_weight = slot.w;
            },
        );
        new_weight
    }

    fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        self.engine.get(u, v).map_or(0, |slot| slot.w)
    }

    fn delete_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64 {
        let remaining = match self.engine.get_mut(u, v) {
            None => return 0,
            Some(slot) => {
                slot.w = slot.w.saturating_sub(delta);
                slot.w
            }
        };
        if remaining == 0 {
            self.engine.remove(u, v);
        }
        remaining
    }

    fn for_each_weighted_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, u64)) {
        self.engine.for_each_payload(u, |slot| f(slot.v, slot.w));
    }

    fn insert_weighted_edges(&mut self, edges: &[(NodeId, NodeId, u64)]) -> usize {
        self.engine.insert_batch(
            edges,
            |&(u, v, _)| (u, v),
            |&(_, v, w)| WeightedSlot { v, w },
            |&(_, _, w), slot| slot.w += w,
        )
    }

    fn distinct_edge_count(&self) -> usize {
        self.engine.edge_count()
    }
}

/// The weighted graph also exposes the unweighted [`DynamicGraph`] surface so
/// the analytics algorithms and the benchmark driver can run on it directly
/// (an edge exists when its weight is non-zero).
impl DynamicGraph for WeightedCuckooGraph {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.engine.contains(u, v) {
            self.insert_weighted(u, v, 1);
            false
        } else {
            self.insert_weighted(u, v, 1);
            true
        }
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.engine.contains(u, v)
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.engine.remove(u, v).is_some()
    }

    fn successors(&self, u: NodeId) -> Vec<NodeId> {
        self.engine.successors(u)
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        // Successor ids are exactly what the scan segments mirror, so the
        // weighted graph's unweighted scan surface rides the contiguous run
        // too; the weighted scan keeps the table walk (weights live in the
        // payload slots only).
        self.engine.for_each_successor_id(u, f);
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        self.engine.for_each_node(f);
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.engine.out_degree(u)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // Mirrors `insert_edge`: a duplicate bumps the weight instead of
        // being ignored, but only newly created distinct edges are counted.
        self.engine.insert_batch(
            edges,
            |&e| e,
            |&(_, v)| WeightedSlot { v, w: 1 },
            |_, slot| slot.w += 1,
        )
    }

    fn remove_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // Mirrors `delete_edge`: the whole edge goes regardless of its weight.
        self.engine.remove_batch(edges)
    }

    fn edge_count(&self) -> usize {
        self.engine.edge_count()
    }

    fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.engine.nodes()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::CuckooGraph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_accumulate_weight() {
        let mut g = WeightedCuckooGraph::new();
        for _ in 0..5 {
            g.insert_weighted(1, 2, 1);
        }
        assert_eq!(g.weight(1, 2), 5);
        assert_eq!(g.distinct_edge_count(), 1);
        assert_eq!(g.total_weight(), 5);
    }

    #[test]
    fn delete_decrements_and_removes_at_zero() {
        let mut g = WeightedCuckooGraph::new();
        g.insert_weighted(1, 2, 3);
        assert_eq!(g.delete_weighted(1, 2, 1), 2);
        assert_eq!(g.delete_weighted(1, 2, 1), 1);
        assert_eq!(g.delete_weighted(1, 2, 1), 0);
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.delete_weighted(1, 2, 1), 0);
        assert_eq!(g.distinct_edge_count(), 0);
    }

    #[test]
    fn custom_delta_and_saturation() {
        let mut g = WeightedCuckooGraph::new();
        g.insert_weighted(4, 5, 10);
        assert_eq!(g.weight(4, 5), 10);
        // Over-deleting saturates at zero and removes the edge.
        assert_eq!(g.delete_weighted(4, 5, 100), 0);
        assert!(!g.has_edge(4, 5));
    }

    #[test]
    fn streaming_workload_with_many_duplicates() {
        // CAIDA-like: 27M raw items dedup to 0.85M edges; here a small version
        // with a 10:1 duplication ratio.
        let mut g = WeightedCuckooGraph::new();
        for round in 0..10u64 {
            for k in 0..2_000u64 {
                let (u, v) = (k % 200, k / 200 + round % 2);
                g.insert_weighted(u, v, 1);
            }
        }
        assert!(g.distinct_edge_count() <= 2_200);
        assert_eq!(g.total_weight(), 20_000);
        // Weights are consistent with the number of repetitions.
        let edges = g.weighted_edges();
        assert_eq!(edges.iter().map(|e| e.weight).sum::<u64>(), 20_000);
    }

    #[test]
    fn dynamic_graph_view_matches_weighted_state() {
        let mut g = WeightedCuckooGraph::new();
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert_eq!(g.weight(1, 2), 2);
        assert_eq!(g.successors(1), vec![2]);
        assert_eq!(g.out_degree(1), 1);
        assert!(g.delete_edge(1, 2));
        assert_eq!(g.weight(1, 2), 0);
        assert_eq!(g.scheme(), GraphScheme::CuckooGraph);
    }

    #[test]
    fn high_degree_weighted_node_round_trips() {
        let mut g = WeightedCuckooGraph::new();
        for v in 0..800u64 {
            g.insert_weighted(9, v, v + 1);
        }
        for v in (0..800u64).step_by(53) {
            assert_eq!(g.weight(9, v), v + 1);
        }
        assert_eq!(g.out_degree(9), 800);
        assert!(g.memory_bytes() > 0);
        assert_eq!(g.stats().edges, 800);
    }
}
