//! Intra-shard read/write coordination: seqlock-validated reader pins plus
//! epoch-based reclamation bounds.
//!
//! A [`ReadCoordinator`] lets queries proceed on a shard **without taking the
//! writer's ownership**: readers announce themselves in a lock-free slot
//! registry and validate a seqlock-style sequence word around their scan,
//! while the shard's writer opens short exclusive *mutation windows* (one per
//! ingest chunk) that first drain the announced readers. The tag-word scans
//! inside the window therefore never race with a mutation — a reader that
//! loses the race at entry retries (counted in
//! [`ReadCounters::reader_retries`]) instead of traversing torn state.
//!
//! ## The protocol
//!
//! The coordinator keeps one sequence word (`seq`: even = quiescent, odd =
//! mutation window open), one generation counter (`epoch`, advanced at the end
//! of every window), and [`MAX_READERS`] per-reader activity words.
//!
//! *Reader* (see [`ReadCoordinator::pin`]): store `(epoch << 1) | ACTIVE` into
//! your slot, then load `seq`. Both accesses are `SeqCst`, so they cannot be
//! reordered against the writer's `seq`-bump/slot-scan pair (the classic
//! Dekker store-then-load handshake). If `seq` is even the pin holds: any
//! writer arriving later sees the slot and waits. If `seq` is odd a window is
//! open — withdraw the slot, count a retry, and spin-wait for the window to
//! close.
//!
//! *Writer* (see [`ReadCoordinator::begin_write`]): flip `seq` to odd
//! (`SeqCst`), then scan every slot until no `ACTIVE` bit remains. After the
//! drain the writer holds exclusivity: readers pinned earlier have finished,
//! and new pins wait on the odd `seq`. [`ReadCoordinator::end_write`] advances
//! `epoch` and flips `seq` back to even.
//!
//! ## Epoch reclamation
//!
//! Table buffers retired by TRANSFORMATION events *inside* a window (via
//! [`crate::pool::TablePool`]) are stamped with the window's epoch and
//! quarantined instead of being recycled. They may only re-enter circulation
//! once every reader that could conceivably hold a reference has advanced
//! past that epoch: [`ReadCoordinator::reclaim_bound`] computes the bound as
//! `min(min-active-reader-epoch, epoch + 1)`. Under the drain protocol the
//! registry is empty inside the window, so the bound resolves to `epoch + 1`
//! and the window's own retirements clear immediately after it — but the
//! bound is computed from the registry, not assumed, so a future reader that
//! genuinely overlaps a window (e.g. a long-running snapshot scan pinned
//! across windows) keeps its table generation alive for exactly as long as
//! needed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of simultaneously registered readers per shard. A `u64`
/// bitmap tracks slot ownership, so the registry is lock-free; a 65th reader
/// spins until a slot frees (reader registrations are short-lived — one
/// [`crate::shard::ShardReadView`] holds one slot per shard).
pub const MAX_READERS: usize = 64;

/// Low bit of a reader slot word: set while the reader is inside a pinned
/// read. The remaining bits carry the epoch the reader observed at pin time.
const ACTIVE: u64 = 1;

/// One reader's activity word, padded to its own cache line so reader pins on
/// neighbouring slots do not false-share.
#[repr(align(64))]
#[derive(Debug)]
struct ReaderSlot(AtomicU64);

/// Counter snapshot of a coordinator's activity, merged into
/// [`crate::StructureStats`] by the sharded stats path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadCounters {
    /// Pins that found a mutation window open and had to withdraw and retry.
    pub reader_retries: u64,
    /// Successful reader pins (each pinned read counts once).
    pub read_pins: u64,
    /// Mutation windows closed (each advances the reclamation epoch).
    pub epoch_advances: u64,
}

/// Reader registry + seqlock word + epoch clock for one shard. See the module
/// docs for the protocol.
#[derive(Debug)]
pub struct ReadCoordinator {
    /// Even = quiescent, odd = a mutation window is open.
    seq: AtomicU64,
    /// Generation counter; advanced by every [`ReadCoordinator::end_write`].
    epoch: AtomicU64,
    /// Ownership bitmap for `slots` (bit i set = slot i registered).
    slot_bitmap: AtomicU64,
    /// Per-reader activity words: `0` idle, `(epoch << 1) | ACTIVE` pinned.
    slots: [ReaderSlot; MAX_READERS],
    reader_retries: AtomicU64,
    read_pins: AtomicU64,
    epoch_advances: AtomicU64,
}

impl Default for ReadCoordinator {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadCoordinator {
    /// A quiescent coordinator at epoch 0 with an empty registry.
    pub fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            slot_bitmap: AtomicU64::new(0),
            slots: std::array::from_fn(|_| ReaderSlot(AtomicU64::new(0))),
            reader_retries: AtomicU64::new(0),
            read_pins: AtomicU64::new(0),
            epoch_advances: AtomicU64::new(0),
        }
    }

    /// Registers a reader, returning its slot index. Lock-free CAS on the
    /// ownership bitmap; spins (with escalating backoff) when all
    /// [`MAX_READERS`] slots are taken.
    pub fn acquire_slot(&self) -> usize {
        let mut backoff = Backoff::new();
        loop {
            let map = self.slot_bitmap.load(Ordering::SeqCst);
            if map == u64::MAX {
                backoff.snooze();
                continue;
            }
            let idx = (!map).trailing_zeros() as usize;
            if self
                .slot_bitmap
                .compare_exchange(map, map | (1 << idx), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return idx;
            }
        }
    }

    /// Unregisters a reader slot obtained from
    /// [`ReadCoordinator::acquire_slot`]. The slot must be unpinned.
    pub fn release_slot(&self, idx: usize) {
        debug_assert_eq!(
            self.slots[idx].0.load(Ordering::SeqCst) & ACTIVE,
            0,
            "released a slot that is still pinned"
        );
        self.slot_bitmap.fetch_and(!(1 << idx), Ordering::SeqCst);
    }

    /// Pins `idx` for a read: on return, no mutation window is open and any
    /// writer opening one will drain this slot first. Spins through open
    /// windows, counting each withdrawal as a retry.
    pub fn pin(&self, idx: usize) {
        let mut backoff = Backoff::new();
        loop {
            let epoch = self.epoch.load(Ordering::SeqCst);
            self.slots[idx]
                .0
                .store((epoch << 1) | ACTIVE, Ordering::SeqCst);
            if self.seq.load(Ordering::SeqCst) & 1 == 0 {
                self.read_pins.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // A mutation window is open (or opened concurrently with our
            // announcement). Withdraw so the writer's drain is not blocked by
            // a reader that never validated, then wait the window out.
            self.slots[idx].0.store(0, Ordering::SeqCst);
            self.reader_retries.fetch_add(1, Ordering::Relaxed);
            while self.seq.load(Ordering::Acquire) & 1 == 1 {
                backoff.snooze();
            }
        }
    }

    /// Ends a pinned read. No exit validation is needed: the slot was
    /// continuously advertised, so a writer that flipped the sequence word
    /// odd in the meantime is still parked in its drain loop waiting for this
    /// very store — it cannot have mutated anything the read observed.
    pub fn unpin(&self, idx: usize) {
        self.slots[idx].0.store(0, Ordering::Release);
    }

    /// Opens a mutation window: flips the sequence word to odd and drains
    /// every advertised reader. Returns the epoch that retirements inside
    /// this window must be stamped with. Callers serialize windows externally
    /// (the shard's write gate); nesting is a protocol violation.
    pub fn begin_write(&self) -> u64 {
        let prev = self.seq.fetch_add(1, Ordering::SeqCst);
        debug_assert_eq!(prev & 1, 0, "nested mutation window");
        let mut backoff = Backoff::new();
        for slot in &self.slots {
            while slot.0.load(Ordering::SeqCst) & ACTIVE != 0 {
                backoff.snooze();
            }
        }
        self.epoch.load(Ordering::SeqCst)
    }

    /// Closes the current mutation window: advances the epoch, then flips the
    /// sequence word back to even (in that order, so a reader that pins right
    /// after the flip can only advertise the new epoch or an older one —
    /// never a future one).
    pub fn end_write(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.epoch_advances.fetch_add(1, Ordering::Relaxed);
        let prev = self.seq.fetch_add(1, Ordering::SeqCst);
        debug_assert_eq!(prev & 1, 1, "end_write without begin_write");
    }

    /// Smallest epoch advertised by any currently pinned reader
    /// (`u64::MAX` when the registry is idle).
    pub fn min_active_epoch(&self) -> u64 {
        let mut min = u64::MAX;
        for slot in &self.slots {
            let word = slot.0.load(Ordering::SeqCst);
            if word & ACTIVE != 0 {
                min = min.min(word >> 1);
            }
        }
        min
    }

    /// Reclamation bound: buffers stamped with an epoch **strictly below**
    /// this value can no longer be referenced by any reader. Inside a drained
    /// mutation window this resolves to `epoch + 1` (the window's own
    /// retirements clear); a pinned reader holds it down to its pin epoch.
    pub fn reclaim_bound(&self) -> u64 {
        self.min_active_epoch()
            .min(self.epoch.load(Ordering::SeqCst) + 1)
    }

    /// The current reclamation epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Snapshot of the activity counters (concurrently readable).
    pub fn counters(&self) -> ReadCounters {
        ReadCounters {
            reader_retries: self.reader_retries.load(Ordering::Relaxed),
            read_pins: self.read_pins.load(Ordering::Relaxed),
            epoch_advances: self.epoch_advances.load(Ordering::Relaxed),
        }
    }
}

/// Escalating wait loop: brief `spin_loop` bursts, then OS yields. The yield
/// matters on machines with fewer cores than threads (including the 1-core CI
/// container), where pure spinning would burn the waited-on thread's quantum.
struct Backoff(u32);

impl Backoff {
    fn new() -> Self {
        Self(0)
    }

    fn snooze(&mut self) {
        if self.0 < 6 {
            for _ in 0..(1u32 << self.0) {
                std::hint::spin_loop();
            }
            self.0 += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

/// Epoch hooks a shard engine exposes so the concurrent write path can stamp
/// retirements and reclaim quarantined table buffers. The no-op defaults let
/// engines without deferred reclamation (e.g. baseline schemes wrapped in
/// [`crate::Sharded`]) participate in the write protocol unchanged.
pub trait ConcurrentEngine {
    /// Enters a mutation window: table buffers retired until the matching
    /// [`ConcurrentEngine::end_concurrent_write`] are stamped with `epoch`
    /// and quarantined instead of being recycled.
    fn begin_concurrent_write(&mut self, _epoch: u64) {}

    /// Leaves the mutation window: releases every quarantined buffer stamped
    /// strictly below `safe_epoch` back into circulation and returns how many
    /// were released. Buffers a straggling reader could still reference
    /// (stamp ≥ bound) stay quarantined for a later window.
    fn end_concurrent_write(&mut self, _safe_epoch: u64) -> usize {
        0
    }
}

/// Compile-time proof the coordinator crosses thread boundaries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReadCoordinator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn slots_register_and_release() {
        let c = ReadCoordinator::new();
        let a = c.acquire_slot();
        let b = c.acquire_slot();
        assert_ne!(a, b);
        c.release_slot(a);
        let again = c.acquire_slot();
        assert_eq!(again, a, "freed slot is reused first");
        c.release_slot(b);
        c.release_slot(again);
        assert_eq!(c.min_active_epoch(), u64::MAX);
    }

    #[test]
    fn all_slots_can_be_held_at_once() {
        let c = ReadCoordinator::new();
        let held: Vec<usize> = (0..MAX_READERS).map(|_| c.acquire_slot()).collect();
        let mut sorted = held.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), MAX_READERS, "slot handed out twice");
        for idx in held {
            c.release_slot(idx);
        }
    }

    #[test]
    fn pins_advertise_the_epoch_and_count() {
        let c = ReadCoordinator::new();
        let idx = c.acquire_slot();
        c.pin(idx);
        assert_eq!(c.min_active_epoch(), 0);
        c.unpin(idx);

        // Advance the epoch through two writer windows.
        let e = c.begin_write();
        assert_eq!(e, 0);
        c.end_write();
        let e = c.begin_write();
        assert_eq!(e, 1);
        c.end_write();

        c.pin(idx);
        assert_eq!(c.min_active_epoch(), 2);
        // A pinned reader caps the reclaim bound at its own epoch even after
        // later windows would otherwise raise it.
        assert_eq!(c.reclaim_bound(), 2);
        c.unpin(idx);
        c.release_slot(idx);

        let counters = c.counters();
        assert_eq!(counters.read_pins, 2);
        assert_eq!(counters.epoch_advances, 2);
        assert_eq!(counters.reader_retries, 0);
    }

    #[test]
    fn reclaim_bound_inside_a_drained_window_clears_the_window_epoch() {
        let c = ReadCoordinator::new();
        let epoch = c.begin_write();
        // Registry drained: the bound passes the window's own stamp.
        assert!(c.reclaim_bound() > epoch);
        assert_eq!(c.reclaim_bound(), epoch + 1);
        c.end_write();
    }

    #[test]
    fn writer_drains_an_active_reader_before_proceeding() {
        let c = ReadCoordinator::new();
        let idx = c.acquire_slot();
        c.pin(idx);
        let entered = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                c.begin_write();
                entered.store(true, Ordering::SeqCst);
                c.end_write();
            });
            // The writer must stay parked in its drain while the pin holds.
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                !entered.load(Ordering::SeqCst),
                "writer entered its window over an active reader pin"
            );
            c.unpin(idx);
        });
        assert!(entered.load(Ordering::SeqCst));
        c.release_slot(idx);
        assert_eq!(c.current_epoch(), 1);
    }

    #[test]
    fn reader_pin_waits_out_an_open_window_and_counts_the_retry() {
        let c = ReadCoordinator::new();
        c.begin_write();
        let finished = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let idx = c.acquire_slot();
                c.pin(idx); // spins: the window is open
                c.unpin(idx);
                c.release_slot(idx);
                finished.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                !finished.load(Ordering::SeqCst),
                "reader pinned through an open mutation window"
            );
            c.end_write();
        });
        assert!(finished.load(Ordering::SeqCst));
        let counters = c.counters();
        assert!(counters.reader_retries >= 1, "losing pin was not counted");
        assert_eq!(counters.read_pins, 1);
    }
}
