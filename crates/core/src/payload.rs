//! Neighbour-slot payloads.
//!
//! The three public graph variants store different information per neighbour
//! `v` of a node `u`:
//!
//! * basic version — just `v` ([`NodeId`]);
//! * extended / weighted version — `⟨v, w⟩` ([`WeightedSlot`]);
//! * multi-edge (Neo4j) version — `v` plus a list of edge identifiers
//!   ([`MultiSlot`]).
//!
//! The storage engine (`engine`, `lcht`, `scht`, `chain`, `cell`) is generic
//! over a [`Payload`], so the TRANSFORMATION and DENYLIST machinery is written
//! once and shared by all three variants.

use crate::hash::KeyHash;
use graph_api::NodeId;

/// A value stored in a small slot or an S-CHT slot, keyed by the neighbour id.
pub trait Payload: Clone {
    /// The neighbour node `v` this payload describes. Used as the cuckoo key.
    fn key(&self) -> NodeId;

    /// Memoized hash material for [`Payload::key`] — one Bob pass yielding
    /// everything a table chain needs (bucket lanes + tag fingerprint). The
    /// kick-out walk and the rebuild paths call this once per displaced item
    /// and reuse the result across every table they try.
    #[inline]
    fn key_hash(&self) -> KeyHash {
        KeyHash::new(self.key())
    }

    /// Heap bytes owned by the payload beyond its inline size (0 for plain
    /// values). Used for memory-usage reporting (Figure 9).
    fn heap_bytes(&self) -> usize {
        0
    }

    /// An inert placeholder value occupying an *empty* slot. Since PR 6 the
    /// cuckoo tables and the slot arena store payloads directly (no
    /// `Option<T>` wrapper — the tag occupancy bit is the only discriminant),
    /// so every vacant slot physically holds this value. A filler must own no
    /// heap (`heap_bytes() == 0`) and is never observable through the public
    /// API: slots are written before they are read, guarded by the occupancy
    /// bits.
    fn filler() -> Self;
}

/// Basic version payload: the neighbour id itself.
impl Payload for NodeId {
    #[inline]
    fn key(&self) -> NodeId {
        *self
    }

    #[inline]
    fn filler() -> Self {
        0
    }
}

/// Extended-version payload: neighbour plus multiplicity (§ III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedSlot {
    /// Neighbour node.
    pub v: NodeId,
    /// Weight — the number of times `⟨u, v⟩` has been inserted (or an
    /// application-defined accumulated value).
    pub w: u64,
}

impl Payload for WeightedSlot {
    #[inline]
    fn key(&self) -> NodeId {
        self.v
    }

    #[inline]
    fn filler() -> Self {
        Self { v: 0, w: 0 }
    }
}

/// Multi-edge payload used by the Neo4j integration (§ V-G): the per-pair
/// weight counter is replaced by the list of concrete parallel edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiSlot {
    /// Neighbour node.
    pub v: NodeId,
    /// Identifiers of every parallel edge `u → v`.
    pub edges: Vec<u64>,
}

impl Payload for MultiSlot {
    #[inline]
    fn key(&self) -> NodeId {
        self.v
    }

    fn heap_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<u64>()
    }

    #[inline]
    fn filler() -> Self {
        Self {
            v: 0,
            edges: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_payload_is_its_own_key() {
        let v: NodeId = 77;
        assert_eq!(v.key(), 77);
        assert_eq!(v.heap_bytes(), 0);
    }

    #[test]
    fn weighted_slot_keys_on_v() {
        let s = WeightedSlot { v: 5, w: 10 };
        assert_eq!(s.key(), 5);
        assert_eq!(s.heap_bytes(), 0);
    }

    #[test]
    fn key_hash_is_the_hash_of_the_key() {
        let s = WeightedSlot { v: 5, w: 10 };
        assert_eq!(s.key_hash(), KeyHash::new(5));
        assert_eq!(s.key_hash().key(), 5);
    }

    #[test]
    fn fillers_are_heapless() {
        assert_eq!(NodeId::filler(), 0);
        assert_eq!(NodeId::filler().heap_bytes(), 0);
        assert_eq!(WeightedSlot::filler(), WeightedSlot { v: 0, w: 0 });
        assert_eq!(WeightedSlot::filler().heap_bytes(), 0);
        let m = MultiSlot::filler();
        assert_eq!(m.v, 0);
        assert_eq!(m.heap_bytes(), 0);
    }

    #[test]
    fn multi_slot_counts_edge_list_heap() {
        let s = MultiSlot {
            v: 9,
            edges: Vec::with_capacity(4),
        };
        assert_eq!(s.key(), 9);
        assert_eq!(s.heap_bytes(), 32);
    }
}
