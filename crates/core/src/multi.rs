//! The multi-edge adaptation of CuckooGraph used by the Neo4j integration
//! (§ V-G): property-graph databases allow several parallel edges between the
//! same node pair, so the per-pair weight counter is replaced by a list of
//! edge identifiers and the query interface returns an iterator over them.

use crate::config::CuckooGraphConfig;
use crate::engine::Engine;
use crate::payload::MultiSlot;
use graph_api::{
    DynamicGraph, EdgeExport, EdgeImport, EdgeRecord, GraphScheme, MemoryFootprint, NodeId,
};

/// Identifier of a concrete (parallel) edge, assigned by the caller — the
/// graph database hands its relationship ids straight through.
pub type EdgeId = u64;

/// CuckooGraph adapted for multi-edges (parallel relationships).
///
/// ```
/// use cuckoograph::MultiEdgeCuckooGraph;
///
/// let mut g = MultiEdgeCuckooGraph::new();
/// g.add_edge(1, 2, 100);
/// g.add_edge(1, 2, 101); // a second, parallel relationship
/// let ids: Vec<_> = g.edges_between(1, 2).collect();
/// assert_eq!(ids, vec![100, 101]);
/// assert!(g.remove_edge(1, 2, 100));
/// assert_eq!(g.edge_multiplicity(1, 2), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MultiEdgeCuckooGraph {
    engine: Engine<MultiSlot>,
    total_edges: usize,
    /// Next identifier handed out by the [`DynamicGraph`] view. Auto ids
    /// descend from `EdgeId::MAX` while callers (e.g. the graph database
    /// handing relationship ids through) conventionally count up from 0, so
    /// the two styles stay disjoint in practice; an exact hit on the next
    /// auto id is additionally skipped in [`MultiEdgeCuckooGraph::add_edge`].
    next_auto_id: EdgeId,
}

impl MultiEdgeCuckooGraph {
    /// Creates a multi-edge graph with the paper's default parameters.
    pub fn new() -> Self {
        Self::with_config(CuckooGraphConfig::default())
    }

    /// Creates a multi-edge graph with a custom configuration.
    pub fn with_config(config: CuckooGraphConfig) -> Self {
        // Like the weighted version, each slot carries extra information, so
        // the inline capacity is R rather than 2R.
        let small_slots = config.weighted_small_slots();
        Self {
            engine: Engine::new(config, small_slots),
            total_edges: 0,
            next_auto_id: EdgeId::MAX,
        }
    }

    /// Registers the parallel edge `edge_id` between `u` and `v`. Duplicate
    /// registrations of the same id are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, edge_id: EdgeId) -> bool {
        if edge_id == self.next_auto_id {
            self.next_auto_id = self.next_auto_id.saturating_sub(1);
        }
        // `upsert` resolves the `u` cell once for the append probe and the
        // insert that follows a miss.
        let mut added = true;
        self.engine.upsert(
            u,
            v,
            || MultiSlot {
                v,
                edges: vec![edge_id],
            },
            |slot| {
                if slot.edges.contains(&edge_id) {
                    added = false;
                } else {
                    slot.edges.push(edge_id);
                }
            },
        );
        if added {
            self.total_edges += 1;
        }
        added
    }

    /// Registers a batch of parallel edges `(u, v, edge_id)`, hoisting the
    /// node-cell resolution out of the loop for runs of same-source edges —
    /// the bulk-load path the graph-database import uses. Duplicate ids on a
    /// pair are ignored, as in [`MultiEdgeCuckooGraph::add_edge`]. Returns the
    /// number of edges actually registered.
    pub fn add_edges(&mut self, edges: &[(NodeId, NodeId, EdgeId)]) -> usize {
        for &(_, _, edge_id) in edges {
            if edge_id == self.next_auto_id {
                self.next_auto_id = self.next_auto_id.saturating_sub(1);
            }
        }
        let mut appended = 0usize;
        let created = self.engine.insert_batch(
            edges,
            |&(u, v, _)| (u, v),
            |&(_, v, id)| MultiSlot { v, edges: vec![id] },
            |&(_, _, id), slot| {
                if !slot.edges.contains(&id) {
                    slot.edges.push(id);
                    appended += 1;
                }
            },
        );
        self.total_edges += created + appended;
        created + appended
    }

    /// True if at least one edge connects `u` to `v`.
    pub fn has_any_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.engine.contains(u, v)
    }

    /// Number of parallel edges between `u` and `v`.
    pub fn edge_multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        self.engine.get(u, v).map_or(0, |slot| slot.edges.len())
    }

    /// Iterates over the identifiers of every parallel edge `u → v` — the O(1)
    /// lookup the Neo4j integration exposes instead of scanning `u`'s whole
    /// adjacency list.
    pub fn edges_between(&self, u: NodeId, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.engine
            .get(u, v)
            .map(|slot| slot.edges.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Removes the concrete edge `edge_id` between `u` and `v`; when it was
    /// the last parallel edge the pair entry is removed entirely.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId, edge_id: EdgeId) -> bool {
        let now_empty = match self.engine.get_mut(u, v) {
            None => return false,
            Some(slot) => {
                let Some(idx) = slot.edges.iter().position(|&e| e == edge_id) else {
                    return false;
                };
                slot.edges.swap_remove(idx);
                slot.edges.is_empty()
            }
        };
        self.total_edges -= 1;
        if now_empty {
            self.engine.remove(u, v);
        }
        true
    }

    /// Total number of concrete (parallel) edges stored.
    pub fn total_edge_count(&self) -> usize {
        self.total_edges
    }

    /// Number of distinct `⟨u, v⟩` pairs stored.
    pub fn pair_count(&self) -> usize {
        self.engine.edge_count()
    }

    /// Number of distinct source nodes.
    pub fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    /// Out-neighbours of `u` (distinct destinations).
    pub fn successors(&self, u: NodeId) -> Vec<NodeId> {
        self.engine.successors(u)
    }

    /// Pre-SWAR successor scan (slot-by-slot table walk) — see
    /// [`CuckooGraph::for_each_successor_scalar`](crate::CuckooGraph::for_each_successor_scalar).
    pub fn for_each_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.engine.for_each_payload_scalar(u, |slot| f(slot.v));
    }

    /// Compacts the engine's slot arena — see
    /// [`CuckooGraph::compact_arena`](crate::CuckooGraph::compact_arena).
    pub fn compact_arena(&mut self) -> usize {
        self.engine.compact_arena()
    }
}

impl Default for MultiEdgeCuckooGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::epoch::ConcurrentEngine for MultiEdgeCuckooGraph {
    fn begin_concurrent_write(&mut self, epoch: u64) {
        self.engine.begin_concurrent_write(epoch);
    }

    fn end_concurrent_write(&mut self, safe_epoch: u64) -> usize {
        self.engine.end_concurrent_write(safe_epoch)
    }
}

impl MemoryFootprint for MultiEdgeCuckooGraph {
    fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }
}

impl EdgeExport for MultiEdgeCuckooGraph {
    fn for_each_edge_record(&self, f: &mut dyn FnMut(EdgeRecord)) {
        self.engine.for_each_edge(|u, slot| {
            f(EdgeRecord {
                source: u,
                target: slot.v,
                weight: 1,
                multiplicity: slot.edges.len() as u32,
            })
        });
    }

    fn edge_record_count(&self) -> usize {
        // One record per distinct pair; parallel edges fold into multiplicity.
        self.engine.edge_count()
    }
}

impl EdgeImport for MultiEdgeCuckooGraph {
    fn import_edge_records(&mut self, records: &[EdgeRecord]) {
        // Identifiers are not part of the stable record, so every parallel
        // edge materialises under a fresh auto id.
        let total: usize = records.iter().map(|r| r.multiplicity.max(1) as usize).sum();
        let mut batch = Vec::with_capacity(total);
        for r in records {
            for _ in 0..r.multiplicity.max(1) {
                let id = self.next_auto_id;
                self.next_auto_id = self.next_auto_id.saturating_sub(1);
                batch.push((r.source, r.target, id));
            }
        }
        self.add_edges(&batch);
    }
}

/// The distinct-pair view: each `⟨u, v⟩` pair counts as one edge regardless of
/// how many parallel relationships it holds. Trait-level inserts allocate
/// fresh edge identifiers descending from `EdgeId::MAX` (disjoint from the
/// 0-counting ids callers conventionally assign); deleting removes the pair
/// with all its parallel edges.
impl DynamicGraph for MultiEdgeCuckooGraph {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let next_auto_id = &mut self.next_auto_id;
        let created = self.engine.upsert(
            u,
            v,
            || {
                let id = *next_auto_id;
                *next_auto_id = next_auto_id.saturating_sub(1);
                MultiSlot { v, edges: vec![id] }
            },
            |_| {},
        );
        if created {
            self.total_edges += 1;
        }
        created
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.has_any_edge(u, v)
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        match self.engine.remove(u, v) {
            Some(slot) => {
                self.total_edges -= slot.edges.len();
                true
            }
            None => false,
        }
    }

    fn successors(&self, u: NodeId) -> Vec<NodeId> {
        MultiEdgeCuckooGraph::successors(self, u)
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        // Distinct destinations are exactly what the scan segments mirror, so
        // the multi-edge scan surface rides the contiguous run too.
        self.engine.for_each_successor_id(u, f);
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        self.engine.for_each_node(f);
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.engine.out_degree(u)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        let next_auto_id = &mut self.next_auto_id;
        let created = self.engine.insert_batch(
            edges,
            |&e| e,
            |&(_, v)| {
                let id = *next_auto_id;
                *next_auto_id = next_auto_id.saturating_sub(1);
                MultiSlot { v, edges: vec![id] }
            },
            |_, _| {},
        );
        self.total_edges += created;
        created
    }

    fn edge_count(&self) -> usize {
        self.pair_count()
    }

    fn node_count(&self) -> usize {
        MultiEdgeCuckooGraph::node_count(self)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.engine.nodes()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::CuckooGraph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_are_kept_separately() {
        let mut g = MultiEdgeCuckooGraph::new();
        assert!(g.add_edge(1, 2, 10));
        assert!(g.add_edge(1, 2, 11));
        assert!(g.add_edge(1, 2, 12));
        assert!(!g.add_edge(1, 2, 10), "duplicate id must be ignored");
        assert_eq!(g.edge_multiplicity(1, 2), 3);
        assert_eq!(g.total_edge_count(), 3);
        assert_eq!(g.pair_count(), 1);
        let ids: Vec<_> = g.edges_between(1, 2).collect();
        assert_eq!(ids, vec![10, 11, 12]);
    }

    #[test]
    fn removing_last_parallel_edge_clears_the_pair() {
        let mut g = MultiEdgeCuckooGraph::new();
        g.add_edge(1, 2, 10);
        g.add_edge(1, 2, 11);
        assert!(g.remove_edge(1, 2, 10));
        assert!(g.has_any_edge(1, 2));
        assert!(g.remove_edge(1, 2, 11));
        assert!(!g.has_any_edge(1, 2));
        assert!(!g.remove_edge(1, 2, 11));
        assert_eq!(g.total_edge_count(), 0);
        assert_eq!(g.pair_count(), 0);
    }

    #[test]
    fn auto_ids_do_not_swallow_caller_ids() {
        use graph_api::DynamicGraph;
        let mut g = MultiEdgeCuckooGraph::new();
        // Trait-level insert hands out an auto id at the top of the id space…
        assert!(g.insert_edge(1, 2));
        // …so a caller registering its own 0-based relationship ids on the
        // same pair (or any other) is never treated as a duplicate.
        assert!(g.add_edge(1, 2, 0));
        assert_eq!(g.edge_multiplicity(1, 2), 2);
        assert!(g.add_edge(3, 4, 0));
        assert_eq!(g.total_edge_count(), 3);
        // Even an exact hit on the next auto id is skipped, not reused.
        let next = g.next_auto_id;
        assert!(g.add_edge(5, 6, next));
        assert!(g.insert_edge(5, 7));
        let auto: Vec<_> = g.edges_between(5, 7).collect();
        assert_ne!(auto[0], next, "auto allocator reused a caller id");
    }

    #[test]
    fn iterator_is_empty_for_unknown_pairs() {
        let g = MultiEdgeCuckooGraph::new();
        assert_eq!(g.edges_between(5, 6).count(), 0);
        assert_eq!(g.edge_multiplicity(5, 6), 0);
    }

    #[test]
    fn many_pairs_and_parallel_edges_round_trip() {
        let mut g = MultiEdgeCuckooGraph::new();
        let mut next_id = 0u64;
        for u in 0..100u64 {
            for v in 0..20u64 {
                for _ in 0..3 {
                    g.add_edge(u, v, next_id);
                    next_id += 1;
                }
            }
        }
        assert_eq!(g.total_edge_count(), 100 * 20 * 3);
        assert_eq!(g.pair_count(), 100 * 20);
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_multiplicity(42, 7), 3);
        assert_eq!(g.successors(3).len(), 20);
        assert!(g.memory_bytes() > 0);
    }
}
