//! The generic storage engine shared by all three CuckooGraph variants.
//!
//! [`Engine`] wires together the pieces built in the other modules:
//!
//! * a [`NodeTable`] (the L-CHT chain + L-DL) keyed by source nodes `u`;
//! * per-cell Part 2 storage (inline small slots or an S-CHT chain);
//! * the S-DL absorbing neighbour-level insertion failures;
//! * the configuration, the kick RNG, and the instrumentation counters that
//!   back [`crate::StructureStats`].
//!
//! The basic, weighted, and multi-edge graphs are thin wrappers that pick the
//! payload type (`NodeId`, [`crate::payload::WeightedSlot`],
//! [`crate::payload::MultiSlot`]) and the per-variant edge semantics.

use crate::arena::SlotArena;
use crate::cell::{Cell, CellCtx, NeighborInsert};
use crate::chain::ChainParams;
use crate::config::CuckooGraphConfig;
use crate::denylist::SmallDenylist;
use crate::hash::KeyHash;
use crate::lcht::NodeTable;
use crate::payload::Payload;
use crate::rng::KickRng;
use crate::scratch::RebuildScratch;
use crate::segment::{ScanArena, NO_SEG};
use crate::stats::StructureStats;
use graph_api::{for_each_source_run, NodeId};

/// Instrumentation counters for the neighbour (S-CHT) level, bundled so the
/// insert helpers can borrow them alongside a cell without touching the rest
/// of the engine.
#[derive(Debug, Clone, Copy, Default)]
struct SchtCounters {
    placements: u64,
    items: u64,
    expansions: u64,
    contractions: u64,
    failures: u64,
}

/// The payload-generic CuckooGraph engine.
#[derive(Debug, Clone)]
pub struct Engine<P> {
    nodes: NodeTable<P>,
    s_dl: SmallDenylist<P>,
    config: CuckooGraphConfig,
    cell_ctx: CellCtx,
    rng: KickRng,
    edges: usize,
    scht: SchtCounters,
    /// Engine-level rebuild buffers shared by every S-CHT chain: expansions,
    /// contractions and merges drain into (and re-place out of) this scratch
    /// instead of allocating per event. The L-CHT chain has its own cell
    /// scratch inside [`NodeTable`]. Its embedded [`crate::pool::TablePool`]
    /// recycles the S-CHT tables those events drop.
    scratch: RebuildScratch<P>,
    /// Reusable buffer for S-DL drains on expansion events.
    dl_buf: Vec<P>,
    /// Engine-level slab holding every inline cell's small slots (see
    /// [`crate::arena`]) — one allocation for all low-degree adjacency.
    arena: SlotArena<P>,
    /// Engine-level arena of contiguous scan segments mirroring every
    /// transformed cell's chain membership (see [`crate::segment`]): the
    /// successor-scan fast path walks one dense run per cell instead of the
    /// chain's scattered buckets. Disabled by `with_scan_segments(false)`,
    /// which keeps the table-walk iterator live as the oracle.
    scan: ScanArena,
}

/// Places `payload` into `cell`, routing kick-out failures to the S-DL (or
/// forcing chain expansions when it is full or disabled) and draining matching
/// S-DL entries back in after an expansion — the whole per-payload insertion
/// machinery of § III-A3, expressed over disjoint borrows of the engine's
/// fields so batch drivers can hold the cell across a run of edges.
#[allow(clippy::too_many_arguments)] // split borrows of the engine's fields, by design
fn settle_payload<P: Payload>(
    cell: &mut Cell<P>,
    s_dl: &mut SmallDenylist<P>,
    ctx: &CellCtx,
    use_denylist: bool,
    arena: &mut SlotArena<P>,
    rng: &mut KickRng,
    counters: &mut SchtCounters,
    payload: P,
    kh: KeyHash,
    scratch: &mut RebuildScratch<P>,
    dl_buf: &mut Vec<P>,
    scan: &mut ScanArena,
) {
    if cell.is_transformed() {
        counters.items += 1;
    }
    let u = cell.node();
    match cell.insert(
        payload,
        kh,
        ctx,
        arena,
        rng,
        &mut counters.placements,
        scratch,
        scan,
    ) {
        NeighborInsert::Stored { expanded } => {
            if expanded {
                counters.expansions += 1;
                // § III-A2 step 3: on every S-CHT expansion, the S-DL
                // entries whose source matches move into the new table.
                // The drain runs through the engine's reusable buffer.
                debug_assert!(dl_buf.is_empty(), "S-DL drain buffer in use");
                s_dl.drain_for_into(u, dl_buf);
                if !dl_buf.is_empty() {
                    let rejected = cell.reinsert_from(
                        dl_buf,
                        ctx,
                        arena,
                        rng,
                        &mut counters.placements,
                        scratch,
                        scan,
                    );
                    for p in rejected {
                        s_dl.push_forced(u, p);
                    }
                }
            }
        }
        NeighborInsert::Failed(p) => {
            counters.failures += 1;
            if use_denylist {
                if let Err(p) = s_dl.push(u, p) {
                    force_store_into(cell, s_dl, ctx, arena, rng, counters, p, scratch, scan);
                }
            } else {
                force_store_into(cell, s_dl, ctx, arena, rng, counters, p, scratch, scan);
            }
        }
    }
}

/// Last-resort storage path: expand the cell's chain until the payload
/// settles. Used when the S-DL is full or disabled (the Figure 5 ablation
/// expands on every failure instead of denylisting).
#[allow(clippy::too_many_arguments)] // split borrows of the engine's fields, by design
fn force_store_into<P: Payload>(
    cell: &mut Cell<P>,
    s_dl: &mut SmallDenylist<P>,
    ctx: &CellCtx,
    arena: &mut SlotArena<P>,
    rng: &mut KickRng,
    counters: &mut SchtCounters,
    payload: P,
    scratch: &mut RebuildScratch<P>,
    scan: &mut ScanArena,
) {
    let u = cell.node();
    let mut pending = payload;
    let mut pending_kh = pending.key_hash();
    loop {
        let displaced = cell.force_expand(ctx, arena, rng, &mut counters.placements, scratch, scan);
        counters.expansions += 1;
        for p in displaced {
            s_dl.push_forced(u, p);
        }
        match cell.insert(
            pending,
            pending_kh,
            ctx,
            arena,
            rng,
            &mut counters.placements,
            scratch,
            scan,
        ) {
            NeighborInsert::Stored { expanded } => {
                if expanded {
                    counters.expansions += 1;
                }
                break;
            }
            NeighborInsert::Failed(p) => {
                // The homeless payload may be a kick-walk victim rather than
                // the one we started with — re-derive its hash material.
                pending_kh = p.key_hash();
                pending = p;
            }
        }
    }
}

impl<P: Payload> Engine<P> {
    /// Creates an engine with `small_slots` inline neighbour slots per cell
    /// (`2R` for the basic variant, `R` for the weighted/multi variants).
    pub fn new(config: CuckooGraphConfig, small_slots: usize) -> Self {
        config
            .validate()
            .expect("invalid CuckooGraph configuration");
        let chain_params = ChainParams {
            cells_per_bucket: config.cells_per_bucket,
            r: config.r,
            expand_threshold: config.expand_threshold,
            contract_threshold: config.contract_threshold,
            max_kicks: config.max_kicks,
            base_len: config.scht_base_len,
        };
        let lcht_params = ChainParams {
            base_len: config.lcht_base_len,
            ..chain_params
        };
        let cell_ctx = CellCtx {
            small_slots,
            chain: chain_params,
            seed: config.seed,
        };
        Self {
            nodes: NodeTable::new(
                lcht_params,
                config.seed,
                config.denylist_capacity,
                config.use_denylist,
                config.resize_scratch,
                config.table_pool,
            ),
            s_dl: SmallDenylist::new(if config.use_denylist {
                config.denylist_capacity
            } else {
                0
            }),
            rng: KickRng::new(config.seed ^ 0x4b1c_4b1c_4b1c_4b1c),
            cell_ctx,
            scratch: if config.resize_scratch {
                RebuildScratch::persistent()
            } else {
                RebuildScratch::alloc_per_event()
            }
            .with_table_pool(config.table_pool),
            dl_buf: Vec::new(),
            arena: SlotArena::new(small_slots),
            scan: ScanArena::new(config.scan_segments),
            config,
            edges: 0,
            scht: SchtCounters::default(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &CuckooGraphConfig {
        &self.config
    }

    /// Number of distinct stored edges (payloads).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Number of distinct source nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.node_count()
    }

    /// Every known source node.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.nodes.nodes()
    }

    /// Calls `f` for every known source node without allocating.
    pub fn for_each_node(&self, mut f: impl FnMut(NodeId)) {
        self.nodes.for_each(|cell| f(cell.node()));
    }

    /// True if node `u` has a cell (it has, or has had, outgoing edges).
    pub fn contains_node(&self, u: NodeId) -> bool {
        self.nodes.contains(KeyHash::new(u))
    }

    /// Looks up the payload stored for edge `⟨u, v⟩`. Follows the paper's
    /// query order: L-CHT cell (or L-DL cell) first, then the S-DL. `u` is
    /// hashed once; `v` is hashed **lazily** — only when the cell has
    /// transformed into an S-CHT chain (an inline cell compares keys
    /// directly, so low-degree lookups pay a single Bob pass total).
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<&P> {
        if let Some(cell) = self.nodes.get(KeyHash::new(u)) {
            if let Some(p) = cell.get_lazy(v, &self.arena) {
                return Some(p);
            }
        }
        self.s_dl.get(u, v)
    }

    /// Mutable lookup of the payload stored for edge `⟨u, v⟩` (`v` hashed
    /// lazily, like [`Engine::get`]). Resolves the node cell once
    /// (coordinates + O(1) re-borrow), instead of the probe-twice shape the
    /// borrow checker used to force here.
    pub fn get_mut(&mut self, u: NodeId, v: NodeId) -> Option<&mut P> {
        if let Some(pos) = self.nodes.find(KeyHash::new(u)) {
            let cell = self.nodes.cell_at_mut(pos);
            if let Some(p) = cell.get_mut_lazy(v, &mut self.arena) {
                return Some(p);
            }
        }
        self.s_dl.get_mut(u, v)
    }

    /// True if edge `⟨u, v⟩` is stored.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.get(u, v).is_some()
    }

    /// Pre-change reference query (per-table re-hash, full payload compares,
    /// no tags, probe-per-layer) — the oracle/baseline counterpart of
    /// [`Engine::contains`], kept for the property tests and the `perf_smoke`
    /// probe-path guard.
    pub fn contains_unmemoized(&self, u: NodeId, v: NodeId) -> bool {
        if let Some(cell) = self.nodes.get_unmemoized(u) {
            if cell.contains_unmemoized(v, &self.arena) {
                return true;
            }
        }
        self.s_dl.get(u, v).is_some()
    }

    /// Inserts a payload for an edge that is **not** currently stored
    /// (callers check with [`Engine::contains`] / update via
    /// [`Engine::get_mut`] first, as the paper's insertion Step 1 does).
    /// The operation always succeeds: failures cascade to the S-DL and, when
    /// that is full or disabled, to a forced expansion.
    pub fn insert_new(&mut self, u: NodeId, payload: P) {
        debug_assert!(!self.contains(u, payload.key()), "insert of existing edge");
        let hu = KeyHash::new(u);
        let hv = payload.key_hash();
        let ctx = self.cell_ctx;
        let use_denylist = self.config.use_denylist;
        let cell = self.nodes.ensure(hu, &mut self.rng);
        settle_payload(
            cell,
            &mut self.s_dl,
            &ctx,
            use_denylist,
            &mut self.arena,
            &mut self.rng,
            &mut self.scht,
            payload,
            hv,
            &mut self.scratch,
            &mut self.dl_buf,
            &mut self.scan,
        );
        self.edges += 1;
    }

    /// Single-edge insert-or-update: resolves the `u` cell exactly once (one
    /// Bob pass for `u`), probes for `v` lazily (hash-free on inline cells,
    /// one memoized pass on transformed ones), and either updates the stored
    /// payload in place or settles the payload built by `make`. Returns
    /// `true` when a new edge was created.
    ///
    /// This is the single-item sibling of [`Engine::insert_batch`] and the
    /// backing of every public `insert_edge`-style operation — the pre-PR-4
    /// shape resolved `u` twice (query then insert) and re-hashed both
    /// endpoints per table along the way.
    pub fn upsert(
        &mut self,
        u: NodeId,
        v: NodeId,
        make: impl FnOnce() -> P,
        update: impl FnOnce(&mut P),
    ) -> bool {
        let ctx = self.cell_ctx;
        let use_denylist = self.config.use_denylist;
        let hu = KeyHash::new(u);
        let cell = self.nodes.ensure(hu, &mut self.rng);
        let hv = if cell.is_transformed() {
            let hv = KeyHash::new(v);
            if let Some(slot) = cell.find_slot(hv, &self.arena) {
                update(cell.payload_at_mut(slot, &mut self.arena));
                return false;
            }
            Some(hv)
        } else {
            if let Some(p) = cell.get_mut_lazy(v, &mut self.arena) {
                update(p);
                return false;
            }
            None
        };
        if let Some(p) = self.s_dl.get_mut(u, v) {
            update(p);
            return false;
        }
        let payload = make();
        debug_assert_eq!(
            payload.key(),
            v,
            "make() built a payload for a different key"
        );
        settle_payload(
            cell,
            &mut self.s_dl,
            &ctx,
            use_denylist,
            &mut self.arena,
            &mut self.rng,
            &mut self.scht,
            payload,
            hv.unwrap_or_else(|| KeyHash::new(v)),
            &mut self.scratch,
            &mut self.dl_buf,
            &mut self.scan,
        );
        self.edges += 1;
        true
    }

    /// Batched insert-or-update over `items`, driving the same per-payload
    /// machinery as [`Engine::insert_new`] but hoisting the per-edge setup out
    /// of the loop: the configuration reads happen once, and the node cell is
    /// resolved once per run of consecutive same-source items instead of once
    /// per edge (bulk loads are typically grouped by source, so a run covers
    /// the whole adjacency of a node).
    ///
    /// For each item, `endpoints` names the edge `⟨u, v⟩`; when the edge is
    /// already stored `update` mutates the payload in place, otherwise `make`
    /// builds the payload to insert. Returns the number of newly created
    /// edges.
    ///
    /// The probe path is batch-aware: each run's keys are pre-hashed into a
    /// reused scratch buffer (`u` once per run, every `v` once), and while
    /// item `i` settles, the candidate tag lines of item `i + 1` are software
    /// prefetched so the next probe's cache lines are already in flight.
    pub fn insert_batch<E>(
        &mut self,
        items: &[E],
        endpoints: impl Fn(&E) -> (NodeId, NodeId),
        mut make: impl FnMut(&E) -> P,
        mut update: impl FnMut(&E, &mut P),
    ) -> usize {
        let ctx = self.cell_ctx;
        let use_denylist = self.config.use_denylist;
        let nodes = &mut self.nodes;
        let s_dl = &mut self.s_dl;
        let rng = &mut self.rng;
        let scht = &mut self.scht;
        let edges = &mut self.edges;
        let scratch = &mut self.scratch;
        let dl_buf = &mut self.dl_buf;
        let arena = &mut self.arena;
        let scan = &mut self.scan;
        let mut created = 0usize;
        // Scratch buffer of memoized hashes for the current run, reused across
        // runs so the batch path stays allocation-free in the steady state.
        // Runs against *inline* cells never fill it (their probes are raw key
        // compares, no hashing); once a run's cell is transformed, the whole
        // run is pre-hashed in one pass and the next key's candidate tag
        // lines are prefetched while the current key settles.
        let mut run_hashes: Vec<KeyHash> = Vec::new();
        for_each_source_run(
            items,
            |e| endpoints(e).0,
            |u, run| {
                let hu = KeyHash::new(u);
                let cell = nodes.ensure(hu, rng);
                let mut hashed = false;
                for (i, item) in run.iter().enumerate() {
                    let (_, v) = endpoints(item);
                    let hv = if cell.is_transformed() {
                        if !hashed {
                            // The cell is (or just became) chained: pre-hash
                            // the run once so every probe below reuses lanes.
                            run_hashes.clear();
                            run_hashes
                                .extend(run.iter().map(|item| KeyHash::new(endpoints(item).1)));
                            hashed = true;
                        }
                        if let Some(&next) = run_hashes.get(i + 1) {
                            cell.prefetch(next);
                        }
                        let hv = run_hashes[i];
                        if let Some(slot) = cell.find_slot(hv, arena) {
                            update(item, cell.payload_at_mut(slot, arena));
                            continue;
                        }
                        Some(hv)
                    } else {
                        if let Some(p) = cell.get_mut_lazy(v, arena) {
                            update(item, p);
                            continue;
                        }
                        None
                    };
                    if let Some(p) = s_dl.get_mut(u, v) {
                        update(item, p);
                        continue;
                    }
                    let hv = hv.unwrap_or_else(|| KeyHash::new(v));
                    settle_payload(
                        cell,
                        s_dl,
                        &ctx,
                        use_denylist,
                        arena,
                        rng,
                        scht,
                        make(item),
                        hv,
                        scratch,
                        dl_buf,
                        scan,
                    );
                    *edges += 1;
                    created += 1;
                }
            },
        );
        created
    }

    /// Batched removal over `edges`, the deletion mirror of
    /// [`Engine::insert_batch`]: the node cell is resolved once per run of
    /// consecutive same-source edges instead of once per edge, while the
    /// per-edge contraction bookkeeping matches [`Engine::remove`] exactly
    /// (S-CHT chains shrink below `Λ`, displaced payloads park in the S-DL).
    /// Returns how many edges were present and removed.
    pub fn remove_batch(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        let ctx = self.cell_ctx;
        let nodes = &mut self.nodes;
        let s_dl = &mut self.s_dl;
        let rng = &mut self.rng;
        let scht = &mut self.scht;
        let edge_total = &mut self.edges;
        let scratch = &mut self.scratch;
        let arena = &mut self.arena;
        let scan = &mut self.scan;
        let mut removed = 0usize;
        // Pre-hashed keys of the current run, mirroring `insert_batch`: runs
        // against inline cells stay hash-free, runs against transformed cells
        // pre-hash once and prefetch the next key's tag lines.
        let mut run_hashes: Vec<KeyHash> = Vec::new();
        for_each_source_run(
            edges,
            |&(u, _)| u,
            |u, run| {
                let hu = KeyHash::new(u);
                let mut cell = nodes.get_mut(hu);
                let mut hashed = false;
                for (i, &(_, v)) in run.iter().enumerate() {
                    let in_cell = match cell.as_mut() {
                        Some(cell) => {
                            let res = if cell.is_transformed() {
                                if !hashed {
                                    run_hashes.clear();
                                    run_hashes.extend(run.iter().map(|&(_, v)| KeyHash::new(v)));
                                    hashed = true;
                                }
                                if let Some(&next) = run_hashes.get(i + 1) {
                                    cell.prefetch(next);
                                }
                                cell.remove(
                                    run_hashes[i],
                                    &ctx,
                                    arena,
                                    rng,
                                    &mut scht.placements,
                                    scratch,
                                    scan,
                                )
                            } else {
                                cell.remove_lazy(
                                    v,
                                    &ctx,
                                    arena,
                                    rng,
                                    &mut scht.placements,
                                    scratch,
                                    scan,
                                )
                            };
                            if res.contracted {
                                scht.contractions += 1;
                            }
                            for p in res.displaced {
                                s_dl.push_forced(u, p);
                            }
                            res.removed.is_some()
                        }
                        None => false,
                    };
                    if in_cell || s_dl.remove(u, v).is_some() {
                        *edge_total -= 1;
                        removed += 1;
                    }
                }
            },
        );
        removed
    }

    /// Removes the payload for edge `⟨u, v⟩`, applying the reverse
    /// TRANSFORMATION to the cell's chain when its loading rate drops below
    /// `Λ`. `v` is hashed lazily, like [`Engine::get`].
    pub fn remove(&mut self, u: NodeId, v: NodeId) -> Option<P> {
        let ctx = self.cell_ctx;
        if let Some(cell) = self.nodes.get_mut(KeyHash::new(u)) {
            let res = cell.remove_lazy(
                v,
                &ctx,
                &mut self.arena,
                &mut self.rng,
                &mut self.scht.placements,
                &mut self.scratch,
                &mut self.scan,
            );
            if res.contracted {
                self.scht.contractions += 1;
            }
            for p in res.displaced {
                self.s_dl.push_forced(u, p);
            }
            if let Some(p) = res.removed {
                self.edges -= 1;
                return Some(p);
            }
        }
        if let Some(p) = self.s_dl.remove(u, v) {
            self.edges -= 1;
            return Some(p);
        }
        None
    }

    /// Out-degree of `u`, including S-DL entries.
    pub fn out_degree(&self, u: NodeId) -> usize {
        let in_cell = self.nodes.get(KeyHash::new(u)).map_or(0, |c| c.degree());
        in_cell + self.s_dl.count_for(u)
    }

    /// Calls `f` for every neighbour payload of `u` (cell then S-DL). The
    /// cell pass runs the SWAR occupancy scan on transformed cells — the
    /// successor-scan fast path.
    pub fn for_each_payload(&self, u: NodeId, mut f: impl FnMut(&P)) {
        if let Some(cell) = self.nodes.get(KeyHash::new(u)) {
            cell.for_each(&self.arena, &mut f);
        }
        self.s_dl.for_each_of(u, f);
    }

    /// Pre-SWAR counterpart of [`Engine::for_each_payload`]: identical node
    /// resolution, but the neighbour tables are walked slot by slot (the
    /// pre-change scan shape). Oracle for the property tests and the live
    /// baseline of the `perf_smoke` scan-path guard.
    pub fn for_each_payload_scalar(&self, u: NodeId, mut f: impl FnMut(&P)) {
        if let Some(cell) = self.nodes.get(KeyHash::new(u)) {
            cell.for_each_scalar(&self.arena, &mut f);
        }
        self.s_dl.for_each_of(u, f);
    }

    /// Calls `f` for every successor id of `u` — the successor-scan fast
    /// path. A transformed cell with a scan segment walks one contiguous,
    /// append-ordered run (a dense slice when tombstone-free, the SWAR
    /// occupancy kernel over the tag bytes otherwise) instead of the chain's
    /// scattered buckets; inline cells read their dense arena block, and
    /// segment-less transformed cells (`with_scan_segments(false)`) fall back
    /// to the table walk — the live oracle. S-DL entries follow, as on every
    /// query path.
    ///
    /// The segment stores successor ids, not payloads: variants that scan
    /// payload contents (weights, edge lists) keep using
    /// [`Engine::for_each_payload`].
    pub fn for_each_successor_id(&self, u: NodeId, mut f: impl FnMut(NodeId)) {
        if let Some(cell) = self.nodes.get(KeyHash::new(u)) {
            let seg = cell.seg_id();
            if seg != NO_SEG {
                self.scan.for_each(seg, &mut f);
            } else {
                cell.for_each(&self.arena, |p| f(p.key()));
            }
        }
        self.s_dl.for_each_of(u, |p| f(p.key()));
    }

    /// Out-neighbours of `u`.
    pub fn successors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.out_degree(u));
        self.for_each_successor_id(u, |v| out.push(v));
        out
    }

    /// Calls `f` for every stored `(u, payload)` pair.
    pub fn for_each_edge(&self, mut f: impl FnMut(NodeId, &P)) {
        self.nodes.for_each(|cell| {
            let u = cell.node();
            cell.for_each(&self.arena, |p| f(u, p));
        });
        for (u, p) in self.s_dl.iter() {
            f(*u, p);
        }
    }

    /// Compacts the engine's slot arena (see [`SlotArena::compact`]): live
    /// blocks slide down over freed ones, the slab's excess capacity is
    /// released, and every cell's block index — in the L-CHT *and* parked in
    /// the L-DL — is rewritten through the remap table. Returns the number of
    /// freed blocks reclaimed.
    ///
    /// Deletion-heavy histories are the only way the free list grows, so this
    /// is a maintenance operation the caller invokes at quiescent points; no
    /// hot path pays for it.
    pub fn compact_arena(&mut self) -> usize {
        let freed = self.arena.free_count();
        if freed == 0 {
            return 0;
        }
        let remap = self.arena.compact();
        self.nodes
            .for_each_cell_mut(|cell| cell.remap_block(&remap));
        freed
    }

    /// Bytes currently held by the structure, including the payload arena and
    /// any table buffers retained by the engine-level pool (the node table
    /// counts its own pool's retained bytes itself) — pooled capacity is never
    /// hidden from the memory experiments.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.nodes.memory_bytes()
            + self.s_dl.memory_bytes()
            + self.arena.memory_bytes()
            + self.scratch.pool_retained_bytes()
            + self.scan.memory_bytes()
    }

    /// Opens a concurrent mutation window at `epoch`: both table pools (the
    /// engine-level scratch and the node table's own level) defer retirements
    /// behind epoch stamps until [`Engine::end_concurrent_write`] proves them
    /// unreachable. Called by [`crate::shard::Sharded`] around each write
    /// section; serial engines never enter this mode.
    pub fn begin_concurrent_write(&mut self, epoch: u64) {
        self.scratch.begin_deferred_retires(epoch);
        self.nodes.begin_deferred_retires(epoch);
        self.scan.begin_deferred_retires(epoch);
    }

    /// Closes the concurrent mutation window, releasing quarantined table
    /// buffers whose epoch stamp is below `safe_epoch` (the read
    /// coordinator's reclaim bound). Returns how many buffers were released.
    pub fn end_concurrent_write(&mut self, safe_epoch: u64) -> usize {
        // The scan arena's pool quarantines segment buffers the same way, but
        // its counts stay private to the arena (reported via `segment_bytes`,
        // not the pool_* stats block) so the table-pool accounting invariants
        // the shard tests pin remain exact.
        self.scan.end_deferred_retires(safe_epoch);
        self.scratch.end_deferred_retires(safe_epoch) + self.nodes.end_deferred_retires(safe_epoch)
    }

    /// Snapshot of the instrumentation counters and structural shape.
    pub fn stats(&self) -> StructureStats {
        let counters = self.nodes.counters();
        let mut scht_tables = 0;
        let mut scht_slots = 0;
        self.nodes.for_each(|cell| {
            scht_tables += cell.scht_tables();
            scht_slots += cell.scht_slots();
        });
        let mut pool = self.scratch.pool_stats();
        pool.merge(&self.nodes.pool_stats());
        StructureStats {
            nodes: self.node_count(),
            edges: self.edges,
            lcht_tables: self.nodes.table_count(),
            lcht_cells: self.nodes.cell_capacity(),
            scht_tables,
            scht_slots,
            l_denylist_len: self.nodes.denylist_len(),
            s_denylist_len: self.s_dl.len(),
            lcht_placements: counters.placements,
            lcht_items: counters.items,
            scht_placements: self.scht.placements,
            scht_items: self.scht.items,
            insertion_failures: counters.failures + self.scht.failures,
            expansions: self.nodes.expansions() + self.scht.expansions,
            contractions: self.nodes.contractions() + self.scht.contractions,
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            pool_retired: pool.retired,
            pool_deferred: pool.deferred,
            pool_reclaimed: pool.reclaimed,
            pool_deferred_pending: pool.deferred_pending,
            pool_retained_bytes: pool.retained_bytes,
            // Reader-side counters live in the shard layer's coordinators; a
            // bare engine has no readers to count.
            reader_retries: 0,
            read_pins: 0,
            epoch_advances: 0,
            segment_compactions: self.scan.compactions(),
            segment_tombstones: self.scan.tombstones(),
            segment_bytes: self.scan.memory_bytes(),
            arena_blocks: self.arena.block_count(),
            arena_free_blocks: self.arena.free_count(),
        }
    }
}

/// Compile-time proof that the whole engine stack is `Send + Sync` for every
/// payload variant — the contract [`crate::shard::Sharded`] relies on to move
/// per-shard engines across [`std::thread::scope`] threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine<NodeId>>();
    assert_send_sync::<Engine<crate::payload::WeightedSlot>>();
    assert_send_sync::<Engine<crate::payload::MultiSlot>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine<NodeId> {
        Engine::new(CuckooGraphConfig::default(), 6)
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let mut e = engine();
        e.insert_new(1, 2);
        e.insert_new(1, 3);
        e.insert_new(4, 5);
        assert_eq!(e.edge_count(), 3);
        assert_eq!(e.node_count(), 2);
        assert!(e.contains(1, 2));
        assert!(e.contains(4, 5));
        assert!(!e.contains(2, 1));
        assert_eq!(e.remove(1, 2), Some(2));
        assert!(!e.contains(1, 2));
        assert_eq!(e.edge_count(), 2);
        assert_eq!(e.remove(1, 2), None);
    }

    #[test]
    fn successors_include_high_degree_nodes() {
        let mut e = engine();
        for v in 0..1_000u64 {
            e.insert_new(7, v);
        }
        assert_eq!(e.out_degree(7), 1_000);
        let mut s = e.successors(7);
        s.sort_unstable();
        assert_eq!(s, (0..1_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn many_nodes_and_edges_stay_consistent() {
        let mut e = engine();
        for u in 0..500u64 {
            for v in 0..10u64 {
                e.insert_new(u, u * 1_000 + v);
            }
        }
        assert_eq!(e.node_count(), 500);
        assert_eq!(e.edge_count(), 5_000);
        for u in (0..500u64).step_by(37) {
            assert_eq!(e.out_degree(u), 10);
            for v in 0..10u64 {
                assert!(e.contains(u, u * 1_000 + v));
            }
        }
        let stats = e.stats();
        assert_eq!(stats.nodes, 500);
        assert_eq!(stats.edges, 5_000);
        assert!(stats.lcht_cells >= 500);
    }

    #[test]
    fn get_mut_updates_payload_in_place() {
        let mut e: Engine<crate::payload::WeightedSlot> =
            Engine::new(CuckooGraphConfig::default(), 3);
        e.insert_new(1, crate::payload::WeightedSlot { v: 2, w: 1 });
        e.get_mut(1, 2).unwrap().w += 9;
        assert_eq!(e.get(1, 2).unwrap().w, 10);
    }

    #[test]
    fn denylist_disabled_still_stores_everything() {
        let config = CuckooGraphConfig::default()
            .with_denylist(false)
            .with_max_kicks(2);
        let mut e: Engine<NodeId> = Engine::new(config, 6);
        for u in 0..200u64 {
            for v in 0..20u64 {
                e.insert_new(u, v);
            }
        }
        assert_eq!(e.edge_count(), 4_000);
        for u in (0..200u64).step_by(11) {
            assert_eq!(e.out_degree(u), 20);
        }
        assert_eq!(e.stats().s_denylist_len, 0);
    }

    #[test]
    fn tiny_kick_budget_exercises_denylists_without_loss() {
        let config = CuckooGraphConfig::default().with_max_kicks(1).with_seed(9);
        let mut e: Engine<NodeId> = Engine::new(config, 6);
        for u in 0..300u64 {
            for v in 0..30u64 {
                e.insert_new(u, v);
            }
        }
        assert_eq!(e.edge_count(), 9_000);
        for u in (0..300u64).step_by(13) {
            for v in 0..30u64 {
                assert!(e.contains(u, v), "lost edge ({u}, {v})");
            }
        }
    }

    #[test]
    fn deleting_everything_empties_the_graph() {
        let mut e = engine();
        for u in 0..50u64 {
            for v in 0..40u64 {
                e.insert_new(u, v);
            }
        }
        for u in 0..50u64 {
            for v in 0..40u64 {
                assert!(e.remove(u, v).is_some(), "missing edge ({u}, {v})");
            }
        }
        assert_eq!(e.edge_count(), 0);
        for u in 0..50u64 {
            assert_eq!(e.out_degree(u), 0);
        }
        let stats = e.stats();
        assert!(stats.contractions > 0, "no contraction ever happened");
    }

    #[test]
    fn memory_shrinks_after_mass_deletion() {
        let mut e = engine();
        for v in 0..2_000u64 {
            e.insert_new(1, v);
        }
        let peak = e.memory_bytes();
        for v in 0..2_000u64 {
            e.remove(1, v);
        }
        assert!(
            e.memory_bytes() < peak,
            "memory did not shrink: peak={peak}, now={}",
            e.memory_bytes()
        );
    }

    #[test]
    fn insert_batch_matches_per_edge_inserts() {
        // Same workload via the batch path and the per-edge path; the stored
        // edge sets (and the duplicate handling) must be identical.
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for u in 0..40u64 {
            for v in 0..25u64 {
                edges.push((u, v * 3));
            }
        }
        edges.push((7, 0)); // duplicate against the stored graph
        edges.push((7, 0)); // duplicate within the batch tail

        let mut batched = engine();
        let created = batched.insert_batch(&edges, |&e| e, |&(_, v)| v, |_, _| {});
        assert_eq!(created, 40 * 25);
        assert_eq!(batched.edge_count(), 40 * 25);

        let mut looped = engine();
        for &(u, v) in &edges {
            if !looped.contains(u, v) {
                looped.insert_new(u, v);
            }
        }
        assert_eq!(batched.edge_count(), looped.edge_count());
        assert_eq!(batched.node_count(), looped.node_count());
        for u in 0..40u64 {
            let mut a = batched.successors(u);
            let mut b = looped.successors(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "successors of {u} differ");
        }
    }

    #[test]
    fn remove_batch_matches_per_edge_removes() {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for u in 0..30u64 {
            for v in 0..20u64 {
                edges.push((u, v * 7));
            }
        }
        // Remove a same-source-grouped subset, plus misses (absent edges) and
        // a duplicate removal within the batch.
        let mut removals: Vec<(NodeId, NodeId)> =
            edges.iter().copied().filter(|&(_, v)| v % 2 == 1).collect();
        removals.push((5, 999)); // never stored
        removals.push(removals[0]); // already removed by the batch head

        let mut batched = engine();
        let mut looped = engine();
        for &(u, v) in &edges {
            batched.insert_new(u, v);
            looped.insert_new(u, v);
        }
        let removed = batched.remove_batch(&removals);
        let mut expected = 0usize;
        for &(u, v) in &removals {
            if looped.remove(u, v).is_some() {
                expected += 1;
            }
        }
        assert_eq!(removed, expected);
        assert_eq!(batched.edge_count(), looped.edge_count());
        for u in 0..30u64 {
            let mut a = batched.successors(u);
            let mut b = looped.successors(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "successors of {u} differ after batch removal");
        }
    }

    #[test]
    fn remove_batch_shrinks_schts_and_keeps_lookups_exact() {
        // Drive one node far past the transformation and several expansion
        // thresholds, then delete back down through the batch path: the S-CHT
        // chain must contract (ultimately collapsing to inline slots) and the
        // surviving edges must remain exactly queryable.
        let mut e = engine();
        let survivors: Vec<(NodeId, NodeId)> = (0..4u64).map(|v| (9, v)).collect();
        let doomed: Vec<(NodeId, NodeId)> = (4..2_000u64).map(|v| (9, v)).collect();
        for &(u, v) in survivors.iter().chain(&doomed) {
            e.insert_new(u, v);
        }
        let grown = e.stats();
        assert!(grown.scht_slots > 0, "node never transformed");
        let peak_memory = e.memory_bytes();

        assert_eq!(e.remove_batch(&doomed), doomed.len());
        let shrunk = e.stats();
        assert!(shrunk.contractions > grown.contractions, "no contraction");
        assert_eq!(
            shrunk.scht_slots, 0,
            "chain should collapse back to inline slots"
        );
        assert!(e.memory_bytes() < peak_memory, "memory did not shrink");
        assert_eq!(e.out_degree(9), survivors.len());
        for &(u, v) in &survivors {
            assert!(e.contains(u, v), "survivor ({u}, {v}) lost");
        }
        for &(u, v) in doomed.iter().step_by(131) {
            assert!(!e.contains(u, v), "deleted ({u}, {v}) still found");
        }
    }

    #[test]
    fn insert_batch_updates_existing_payloads() {
        let mut e: Engine<crate::payload::WeightedSlot> =
            Engine::new(CuckooGraphConfig::default(), 3);
        let items = [(1u64, 2u64, 5u64), (1, 2, 4), (1, 3, 1)];
        let created = e.insert_batch(
            &items,
            |&(u, v, _)| (u, v),
            |&(_, v, w)| crate::payload::WeightedSlot { v, w },
            |&(_, _, w), slot| slot.w += w,
        );
        assert_eq!(created, 2);
        assert_eq!(e.get(1, 2).unwrap().w, 9);
        assert_eq!(e.get(1, 3).unwrap().w, 1);
    }

    #[test]
    fn for_each_node_visits_every_source_once() {
        let mut e = engine();
        for u in [3u64, 9, 12, 500] {
            e.insert_new(u, 1);
        }
        let mut seen = Vec::new();
        e.for_each_node(|u| seen.push(u));
        seen.sort_unstable();
        assert_eq!(seen, vec![3, 9, 12, 500]);
    }

    /// The segment-backed successor scan and the table-walk oracle agree
    /// exactly through transformation, growth, deletion (tombstones +
    /// compaction), and the collapse back to inline slots.
    #[test]
    fn segment_scan_matches_table_walk_under_churn() {
        let mut on = engine();
        let mut off: Engine<NodeId> =
            Engine::new(CuckooGraphConfig::default().with_scan_segments(false), 6);
        for v in 0..1_500u64 {
            on.insert_new(2, v);
            off.insert_new(2, v);
        }
        for v in (0..1_500u64).step_by(3) {
            assert_eq!(on.remove(2, v), Some(v));
            assert_eq!(off.remove(2, v), Some(v));
        }
        let mut a = on.successors(2);
        let mut b = off.successors(2);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "segment scan diverged from the table-walk oracle");
        // And against the payload walk of the same engine.
        let mut walk = Vec::new();
        on.for_each_payload(2, |p| walk.push(*p));
        walk.sort_unstable();
        assert_eq!(a, walk);
        let s = on.stats();
        assert!(s.segment_tombstones > 0, "deletions never tombstoned");
        assert!(s.segment_bytes > 0);
        let off_stats = off.stats();
        assert_eq!(
            off_stats.segment_bytes, 0,
            "disabled arena must own nothing"
        );
        assert_eq!(off_stats.segment_tombstones, 0);
    }

    #[test]
    fn stats_track_placement_averages_near_one() {
        let mut e = engine();
        for u in 0..2_000u64 {
            for v in 0..4u64 {
                e.insert_new(u, v);
            }
        }
        let stats = e.stats();
        // Theorem 1 / Theorem 2: the per-item placement work (including every
        // kick-out and every expansion re-insertion) is a small constant, far
        // below the kick budget T = 250. The paper measures ≈1.017 on the much
        // larger NotreDame dataset where expansions are amortised over more
        // items; this small workload tolerates a looser bound.
        let avg = stats.avg_lcht_placements_per_item();
        assert!(avg < 8.0, "avg L-CHT placements per item too high: {avg}");
        assert!(avg >= 1.0);
        assert!(stats.lcht_items == 2_000);
    }
}
