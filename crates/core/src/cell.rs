//! L-CHT cells: Part 1 (the source node `u`) plus the transformable Part 2.
//!
//! Part 2 starts as up to `2R` inline **small slots** (or `R` for the weighted
//! variant) that hold neighbour payloads directly. Once the degree exceeds the
//! inline capacity the slots "merge in pairs" into pointer slots: concretely,
//! the payloads move into an S-CHT chain ([`TableChain`]) owned by the cell,
//! which then grows and shrinks per the TRANSFORMATION rule. A chain that
//! shrinks back to the inline capacity collapses into small slots again.
//!
//! Since PR 6 the small slots are not a per-cell `Vec` but a fixed-size block
//! inside the engine's [`SlotArena`]: the cell stores a `u32` block index and
//! a length byte, and every small-slot operation takes the arena as a
//! parameter. This removes one heap allocation + `Vec` header per low-degree
//! node and packs neighbour slots densely for the successor-scan hot path
//! (see [`crate::arena`]). The TRANSFORMATION paths likewise thread the
//! scratch's [`TablePool`]: a collapse dismantles the chain (retiring its
//! table buffers) and a transformation births its chain out of the pool.

use crate::arena::{SlotArena, NO_BLOCK};
use crate::chain::{ChainInsert, ChainParams, TableChain};
use crate::hash::{splitmix64, KeyHash};
use crate::payload::Payload;
use crate::rng::KickRng;
use crate::scratch::RebuildScratch;
use crate::segment::{ScanArena, NO_SEG};
use graph_api::NodeId;

/// Everything a cell needs to know to manage its Part 2. Borrowed from the
/// engine on every call so cells stay small.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx {
    /// Inline capacity of Part 2 before it transforms (`2R` basic, `R` weighted).
    /// Also the block size of the engine's slot arena.
    pub small_slots: usize,
    /// Parameters of the S-CHT chain the cell transforms into.
    pub chain: ChainParams,
    /// Base seed; per-cell chains derive their hash seeds from it and `u`.
    pub seed: u64,
}

/// Result of placing a neighbour payload into a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeighborInsert<P> {
    /// The payload found a home. `expanded` reports whether the S-CHT chain
    /// changed shape while absorbing it, which tells the engine to drain the
    /// matching S-DL entries back in (§ III-A2, step 3).
    Stored {
        /// True if the chain enabled a table or merged during this insertion.
        expanded: bool,
    },
    /// The kick-out budget was exhausted; the payload is handed back so the
    /// engine can park it in the S-DL or force an expansion.
    Failed(P),
}

/// Result of removing a neighbour payload from a cell.
#[derive(Debug)]
pub struct NeighborRemove<P> {
    /// The removed payload, if the neighbour was present.
    pub removed: Option<P>,
    /// Payloads that lost their slot while the chain contracted and could not
    /// be re-placed; the engine parks them in the S-DL so nothing is lost.
    pub displaced: Vec<P>,
    /// True if the chain contracted or collapsed back to small slots.
    pub contracted: bool,
}

/// Opaque coordinates of a payload inside a cell's Part 2, produced by
/// [`Cell::find_slot`] and consumed by [`Cell::payload_at_mut`]. Valid only
/// until the next mutation of the cell.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CellSlot {
    /// Index into the inline small slots (within the cell's arena block).
    Small(usize),
    /// Chain coordinates (table, (array, flat slot)).
    Chain((usize, (usize, usize))),
}

/// Part 2 of a cell: inline small slots or an S-CHT chain.
#[derive(Debug, Clone)]
enum Part2<P> {
    /// Inline neighbour storage (degree ≤ `2R`): a block in the engine's
    /// [`SlotArena`] ([`NO_BLOCK`] until the first neighbour arrives) plus the
    /// live length. 5 bytes where a `Vec<P>` header was 24.
    Small {
        /// Arena block holding the slots, or [`NO_BLOCK`].
        block: u32,
        /// Number of live slots at the front of the block; the tail holds
        /// [`Payload::filler`].
        len: u8,
    },
    /// Degree outgrew the inline slots: neighbours live in an S-CHT chain,
    /// mirrored by a contiguous scan segment for the successor-scan fast
    /// path.
    Chain {
        /// The S-CHT chain holding the neighbour payloads.
        chain: Box<TableChain<P>>,
        /// The cell's scan segment in the engine's
        /// [`ScanArena`], or [`NO_SEG`] when segments are disabled. Kept in
        /// lockstep with chain membership by the mutation hooks below; ids
        /// travel with the cell through L-CHT kicks and resizes.
        seg: u32,
    },
}

/// One L-CHT cell: the node `u` plus its transformable neighbour storage.
#[derive(Debug, Clone)]
pub struct Cell<P> {
    u: NodeId,
    part2: Part2<P>,
}

impl<P: Payload> Cell<P> {
    /// Creates an empty cell for node `u`. No arena block is reserved until
    /// the first neighbour arrives.
    pub fn new(u: NodeId) -> Self {
        Self {
            u,
            part2: Part2::Small {
                block: NO_BLOCK,
                len: 0,
            },
        }
    }

    /// The node stored in Part 1.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.u
    }

    /// The live small slots of an inline cell — empty for a block-less cell,
    /// so the arena is only consulted when a block exists.
    #[inline]
    fn live_slots(block: u32, len: u8, arena: &SlotArena<P>) -> &[P] {
        if len == 0 {
            &[]
        } else {
            &arena.slots(block)[..len as usize]
        }
    }

    /// Current degree (neighbours stored in this cell; S-DL entries for `u`
    /// are tracked by the engine). Read from the inline length byte — no
    /// arena access.
    pub fn degree(&self) -> usize {
        match &self.part2 {
            Part2::Small { len, .. } => *len as usize,
            Part2::Chain { chain, .. } => chain.count(),
        }
    }

    /// True if Part 2 has transformed into an S-CHT chain.
    pub fn is_transformed(&self) -> bool {
        matches!(self.part2, Part2::Chain { .. })
    }

    /// Number of S-CHT tables hanging off this cell (0 while inline).
    pub fn scht_tables(&self) -> usize {
        match &self.part2 {
            Part2::Small { .. } => 0,
            Part2::Chain { chain, .. } => chain.table_count(),
        }
    }

    /// Total S-CHT slot capacity of this cell (0 while inline).
    pub fn scht_slots(&self) -> usize {
        match &self.part2 {
            Part2::Small { .. } => 0,
            Part2::Chain { chain, .. } => chain.capacity(),
        }
    }

    /// Looks up the payload stored for neighbour `kh.key()`.
    pub fn get<'a>(&'a self, kh: KeyHash, arena: &'a SlotArena<P>) -> Option<&'a P> {
        match &self.part2 {
            Part2::Small { block, len } => {
                let v = kh.key();
                Self::live_slots(*block, *len, arena)
                    .iter()
                    .find(|p| p.key() == v)
            }
            Part2::Chain { chain, .. } => chain.get(kh),
        }
    }

    /// Mutable lookup of the payload stored for neighbour `kh.key()`.
    pub fn get_mut<'a>(
        &'a mut self,
        kh: KeyHash,
        arena: &'a mut SlotArena<P>,
    ) -> Option<&'a mut P> {
        match &mut self.part2 {
            Part2::Small { block, len } => {
                if *len == 0 {
                    return None;
                }
                let v = kh.key();
                arena.slots_mut(*block)[..*len as usize]
                    .iter_mut()
                    .find(|p| p.key() == v)
            }
            Part2::Chain { chain, .. } => chain.get_mut(kh),
        }
    }

    /// True if neighbour `kh.key()` is stored in this cell.
    pub fn contains(&self, kh: KeyHash, arena: &SlotArena<P>) -> bool {
        self.find_slot(kh, arena).is_some()
    }

    /// Locates neighbour `kh.key()` in Part 2, returning opaque coordinates
    /// for [`Cell::payload_at_mut`] — one probe resolves "update or insert"
    /// flows that previously probed twice.
    pub(crate) fn find_slot(&self, kh: KeyHash, arena: &SlotArena<P>) -> Option<CellSlot> {
        match &self.part2 {
            Part2::Small { block, len } => {
                let v = kh.key();
                Self::live_slots(*block, *len, arena)
                    .iter()
                    .position(|p| p.key() == v)
                    .map(CellSlot::Small)
            }
            Part2::Chain { chain, .. } => chain.find_index(kh).map(CellSlot::Chain),
        }
    }

    /// Direct access to a payload located by [`Cell::find_slot`].
    pub(crate) fn payload_at_mut<'a>(
        &'a mut self,
        slot: CellSlot,
        arena: &'a mut SlotArena<P>,
    ) -> &'a mut P {
        match (&mut self.part2, slot) {
            (Part2::Small { block, .. }, CellSlot::Small(i)) => &mut arena.slots_mut(*block)[i],
            (Part2::Chain { chain, .. }, CellSlot::Chain(pos)) => chain.item_at_mut(pos),
            _ => unreachable!("cell slot coordinates from a different Part 2 shape"),
        }
    }

    /// Lazy probe by raw key: an inline cell compares keys directly — **no
    /// hashing at all**, matching the pre-PR-4 cost of the (very common)
    /// low-degree case — while a transformed cell pays the one memoized Bob
    /// pass. Callers that already hold a [`KeyHash`] use [`Cell::get`].
    pub fn get_lazy<'a>(&'a self, v: NodeId, arena: &'a SlotArena<P>) -> Option<&'a P> {
        match &self.part2 {
            Part2::Small { block, len } => Self::live_slots(*block, *len, arena)
                .iter()
                .find(|p| p.key() == v),
            Part2::Chain { chain, .. } => chain.get(KeyHash::new(v)),
        }
    }

    /// Mutable counterpart of [`Cell::get_lazy`].
    pub fn get_mut_lazy<'a>(
        &'a mut self,
        v: NodeId,
        arena: &'a mut SlotArena<P>,
    ) -> Option<&'a mut P> {
        match &mut self.part2 {
            Part2::Small { block, len } => {
                if *len == 0 {
                    return None;
                }
                arena.slots_mut(*block)[..*len as usize]
                    .iter_mut()
                    .find(|p| p.key() == v)
            }
            Part2::Chain { chain, .. } => chain.get_mut(KeyHash::new(v)),
        }
    }

    /// Removes neighbour `v` from the inline small slots: the victim is
    /// swapped out for a [`Payload::filler`] which then swaps to the end of
    /// the live prefix, keeping the block dense. The (now possibly empty)
    /// block is kept for the next insert.
    fn remove_small(block: u32, len: &mut u8, v: NodeId, arena: &mut SlotArena<P>) -> Option<P> {
        let i = Self::live_slots(block, *len, arena)
            .iter()
            .position(|p| p.key() == v)?;
        let slots = arena.slots_mut(block);
        let removed = std::mem::replace(&mut slots[i], P::filler());
        let last = *len as usize - 1;
        if i != last {
            slots.swap(i, last);
        }
        *len -= 1;
        Some(removed)
    }

    /// Lazy counterpart of [`Cell::remove`]: hash-free on inline cells, one
    /// memoized Bob pass on transformed ones.
    #[allow(clippy::too_many_arguments)] // disjoint borrows of the engine's fields
    pub fn remove_lazy(
        &mut self,
        v: NodeId,
        ctx: &CellCtx,
        arena: &mut SlotArena<P>,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
        scan: &mut ScanArena,
    ) -> NeighborRemove<P> {
        if let Part2::Small { block, len } = &mut self.part2 {
            let removed = Self::remove_small(*block, len, v, arena);
            return NeighborRemove {
                removed,
                displaced: Vec::new(),
                contracted: false,
            };
        }
        self.remove(KeyHash::new(v), ctx, arena, rng, placements, scratch, scan)
    }

    /// Pre-change reference probe of Part 2 (per-table re-hash, full payload
    /// compares, no tags) — the oracle/baseline counterpart of
    /// [`Cell::contains`].
    pub fn contains_unmemoized(&self, v: NodeId, arena: &SlotArena<P>) -> bool {
        match &self.part2 {
            Part2::Small { block, len } => Self::live_slots(*block, *len, arena)
                .iter()
                .any(|p| p.key() == v),
            Part2::Chain { chain, .. } => chain.contains_unmemoized(v),
        }
    }

    /// Prefetches the candidate tag lines a probe for `kh` would read. Inline
    /// small slots need no prefetch (their block is one contiguous line the
    /// probe reads immediately).
    #[inline]
    pub fn prefetch(&self, kh: KeyHash) {
        if let Part2::Chain { chain, .. } = &self.part2 {
            chain.prefetch(kh);
        }
    }

    /// Calls `f` for every neighbour payload in this cell. Chained cells walk
    /// their tables' tag words (SWAR occupancy scan); inline cells scan their
    /// dense arena block directly.
    pub fn for_each(&self, arena: &SlotArena<P>, mut f: impl FnMut(&P)) {
        match &self.part2 {
            Part2::Small { block, len } => {
                for p in Self::live_slots(*block, *len, arena) {
                    f(p);
                }
            }
            Part2::Chain { chain, .. } => chain.for_each(f),
        }
    }

    /// Pre-SWAR iteration over the neighbour payloads — the scalar oracle and
    /// scan-guard baseline counterpart of [`Cell::for_each`]. Identical on
    /// inline cells (they have no tag arrays to scan).
    pub fn for_each_scalar(&self, arena: &SlotArena<P>, mut f: impl FnMut(&P)) {
        match &self.part2 {
            Part2::Small { block, len } => {
                for p in Self::live_slots(*block, *len, arena) {
                    f(p);
                }
            }
            Part2::Chain { chain, .. } => chain.for_each_scalar(f),
        }
    }

    /// The neighbour ids stored in this cell.
    pub fn neighbors(&self, arena: &SlotArena<P>) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree());
        self.for_each(arena, |p| out.push(p.key()));
        out
    }

    /// The cell's scan-segment id: [`NO_SEG`] while inline (low-degree scans
    /// read the dense arena block directly) or when segments are disabled.
    #[inline]
    pub(crate) fn seg_id(&self) -> u32 {
        match &self.part2 {
            Part2::Small { .. } => NO_SEG,
            Part2::Chain { seg, .. } => *seg,
        }
    }

    /// Creates and fills the scan segment mirroring a freshly built chain:
    /// one append per stored neighbour. Runs at TRANSFORMATION time, so the
    /// per-item Bob pass covers at most the inline capacity plus one.
    fn build_segment(chain: &TableChain<P>, scan: &mut ScanArena) -> u32 {
        let seg = scan.create(chain.count());
        if seg != NO_SEG {
            chain.for_each(|p| {
                let kh = p.key_hash();
                scan.append(seg, kh.key());
            });
        }
        seg
    }

    fn chain_seed(ctx: &CellCtx, u: NodeId) -> u64 {
        splitmix64(ctx.seed ^ u.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// TRANSFORMATION: the inline slots merge into pointer slots — every
    /// stored payload moves out of the arena block (which is freed) into a
    /// freshly enabled 1st S-CHT born from the scratch's table pool.
    /// Already-stored neighbours must never be lost, so they are placed with
    /// the forced path (which expands the chain as needed).
    #[allow(clippy::too_many_arguments)] // disjoint borrows of the engine's fields
    fn transform(
        block: u32,
        len: u8,
        u: NodeId,
        ctx: &CellCtx,
        arena: &mut SlotArena<P>,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
    ) -> TableChain<P> {
        let mut chain = TableChain::new_in(ctx.chain, Self::chain_seed(ctx, u), &mut scratch.pool);
        if block != NO_BLOCK {
            for slot in arena.slots_mut(block)[..len as usize].iter_mut() {
                let existing = std::mem::replace(slot, P::filler());
                chain.insert_forced(existing, rng, placements, scratch);
            }
            arena.free_block(block);
        }
        chain
    }

    /// Inserts a neighbour payload (memoized hash `kh`) whose key is **not**
    /// already present (callers use [`Cell::get_mut`] for updates). Handles
    /// the small-slot → chain TRANSFORMATION and chain growth; any resize the
    /// insertion triggers rebuilds through the caller's `scratch`.
    #[allow(clippy::too_many_arguments)] // disjoint borrows of the engine's fields
    pub fn insert(
        &mut self,
        payload: P,
        kh: KeyHash,
        ctx: &CellCtx,
        arena: &mut SlotArena<P>,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
        scan: &mut ScanArena,
    ) -> NeighborInsert<P> {
        debug_assert_eq!(
            payload.key(),
            kh.key(),
            "payload inserted under foreign hash"
        );
        debug_assert!(!self.contains(kh, arena), "insert of duplicate neighbour");
        debug_assert_eq!(arena.block_size(), ctx.small_slots, "arena/ctx mismatch");
        match &mut self.part2 {
            Part2::Small { block, len } => {
                if (*len as usize) < ctx.small_slots {
                    if *block == NO_BLOCK {
                        *block = arena.alloc_block();
                    }
                    arena.slots_mut(*block)[*len as usize] = payload;
                    *len += 1;
                    return NeighborInsert::Stored { expanded: false };
                }
                let mut chain =
                    Self::transform(*block, *len, self.u, ctx, arena, rng, placements, scratch);
                let result = match chain.insert(payload, kh, rng, placements, scratch) {
                    ChainInsert::Stored => NeighborInsert::Stored { expanded: true },
                    ChainInsert::Failed(p) => NeighborInsert::Failed(p),
                };
                // The segment mirrors whatever membership the chain settled
                // on (the incoming payload included iff it stored).
                let seg = Self::build_segment(&chain, scan);
                self.part2 = Part2::Chain {
                    chain: Box::new(chain),
                    seg,
                };
                result
            }
            Part2::Chain { chain, seg } => {
                let before = chain.expansions();
                let v = kh.key();
                match chain.insert(payload, kh, rng, placements, scratch) {
                    ChainInsert::Stored => {
                        scan.append(*seg, v);
                        NeighborInsert::Stored {
                            expanded: chain.expansions() > before,
                        }
                    }
                    ChainInsert::Failed(p) => {
                        // Exactly one item ends up outside the chain. If it
                        // is not the incoming payload, the new edge settled
                        // and `p` is a kick victim evicted from the chain —
                        // swap their segment entries.
                        if p.key() != v {
                            scan.append(*seg, v);
                            scan.tombstone(*seg, p.key());
                        }
                        NeighborInsert::Failed(p)
                    }
                }
            }
        }
    }

    /// Forces one expansion step of Part 2: an inline cell transforms into a
    /// chain immediately, a chained cell grows its chain by one step. Returns
    /// payloads displaced by a merge that could not be re-placed. Used by the
    /// engine when the S-DL is full or disabled.
    #[allow(clippy::too_many_arguments)] // disjoint borrows of the engine's fields
    pub fn force_expand(
        &mut self,
        ctx: &CellCtx,
        arena: &mut SlotArena<P>,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
        scan: &mut ScanArena,
    ) -> Vec<P> {
        match &mut self.part2 {
            Part2::Small { block, len } => {
                let chain =
                    Self::transform(*block, *len, self.u, ctx, arena, rng, placements, scratch);
                let seg = Self::build_segment(&chain, scan);
                self.part2 = Part2::Chain {
                    chain: Box::new(chain),
                    seg,
                };
                Vec::new()
            }
            Part2::Chain { chain, seg } => {
                let displaced = chain.expand(rng, placements, scratch);
                // Displaced payloads leave the cell (the engine parks them in
                // the S-DL); the segment must forget them now.
                for p in &displaced {
                    scan.tombstone(*seg, p.key());
                }
                displaced
            }
        }
    }

    /// Re-inserts payloads drained from the S-DL after an expansion, consuming
    /// `items` in place (the engine hands its reusable drain buffer, which
    /// comes back empty). Payloads that still cannot be placed are handed back
    /// (the engine re-parks them).
    #[allow(clippy::too_many_arguments)] // disjoint borrows of the engine's fields
    pub fn reinsert_from(
        &mut self,
        items: &mut Vec<P>,
        ctx: &CellCtx,
        arena: &mut SlotArena<P>,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
        scan: &mut ScanArena,
    ) -> Vec<P> {
        let mut rejected = Vec::new();
        while let Some(item) = items.pop() {
            let kh = item.key_hash();
            if self.contains(kh, arena) {
                // Should not happen (the engine checks before parking), but a
                // duplicate must never corrupt the cuckoo invariant.
                continue;
            }
            match self.insert(item, kh, ctx, arena, rng, placements, scratch, scan) {
                NeighborInsert::Stored { .. } => {}
                NeighborInsert::Failed(p) => rejected.push(p),
            }
        }
        rejected
    }

    /// Removes neighbour `kh.key()`, applying the reverse TRANSFORMATION when
    /// the chain's loading rate drops below `Λ` and collapsing back to inline
    /// small slots when everything fits again.
    #[allow(clippy::too_many_arguments)] // disjoint borrows of the engine's fields
    pub fn remove(
        &mut self,
        kh: KeyHash,
        ctx: &CellCtx,
        arena: &mut SlotArena<P>,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
        scan: &mut ScanArena,
    ) -> NeighborRemove<P> {
        match &mut self.part2 {
            Part2::Small { block, len } => {
                let removed = Self::remove_small(*block, len, kh.key(), arena);
                NeighborRemove {
                    removed,
                    displaced: Vec::new(),
                    contracted: false,
                }
            }
            Part2::Chain { chain, seg } => {
                let seg_id = *seg;
                let removed = chain.remove(kh);
                if removed.is_none() {
                    return NeighborRemove {
                        removed,
                        displaced: Vec::new(),
                        contracted: false,
                    };
                }
                scan.tombstone(seg_id, kh.key());
                let contracted;
                let mut displaced = Vec::new();
                // Collapse back to inline slots once everything fits again —
                // the end state of the reverse transformation. The chain is
                // dismantled (items into the scratch, table buffers into the
                // pool) and the survivors land in a fresh arena block.
                if chain.count() <= ctx.small_slots {
                    debug_assert!(scratch.is_empty(), "scratch busy during collapse");
                    // The survivors move back inline: the segment retires
                    // (its buffers re-enter the pool, quarantined if a
                    // concurrent window is open).
                    scan.release(seg_id);
                    chain.dismantle(&mut scratch.items, &mut scratch.pool);
                    let n = scratch.items.len();
                    debug_assert!(n <= arena.block_size());
                    let block = if n == 0 {
                        NO_BLOCK
                    } else {
                        arena.alloc_block()
                    };
                    if block != NO_BLOCK {
                        let slots = arena.slots_mut(block);
                        for (i, item) in scratch.items.drain(..).enumerate() {
                            slots[i] = item;
                        }
                    }
                    self.part2 = Part2::Small {
                        block,
                        len: n as u8,
                    };
                    contracted = true;
                } else {
                    let before = chain.contractions();
                    displaced = chain.maybe_contract(rng, placements, scratch);
                    // Contraction leftovers leave for the S-DL: forget them.
                    for p in &displaced {
                        scan.tombstone(seg_id, p.key());
                    }
                    contracted = chain.contractions() > before;
                }
                NeighborRemove {
                    removed,
                    displaced,
                    contracted,
                }
            }
        }
    }

    /// Rewrites the cell's arena block index through a compaction remap table
    /// (see [`SlotArena::compact`]). Chained cells store nothing in the arena
    /// and are untouched.
    pub(crate) fn remap_block(&mut self, remap: &[u32]) {
        if let Part2::Small { block, .. } = &mut self.part2 {
            if *block != NO_BLOCK {
                let new = remap[*block as usize];
                debug_assert_ne!(new, NO_BLOCK, "live cell's block freed by compaction");
                *block = new;
            }
        }
    }

    /// Heap bytes owned by Part 2 *beyond the engine-level arena* (which the
    /// engine accounts once, globally): 0 for inline cells, the chain for
    /// transformed ones.
    pub fn part2_bytes(&self) -> usize {
        match &self.part2 {
            Part2::Small { .. } => 0,
            Part2::Chain { chain, .. } => {
                std::mem::size_of::<TableChain<P>>() + chain.memory_bytes()
            }
        }
    }
}

impl<P: Payload> Payload for Cell<P> {
    #[inline]
    fn key(&self) -> NodeId {
        self.u
    }

    fn heap_bytes(&self) -> usize {
        self.part2_bytes()
    }

    /// A vacant L-CHT slot: node 0, no block, no chain. Owns nothing — the
    /// arena block field is [`NO_BLOCK`], so a filler can be cloned freely
    /// without aliasing any live block.
    #[inline]
    fn filler() -> Self {
        Cell::new(0)
    }
}

/// Compile-time proof that cells (and their transformable Part 2) are
/// `Send + Sync`, as the sharded engine's thread fan-out requires.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Cell<NodeId>>();
    assert_send_sync::<Cell<crate::payload::WeightedSlot>>();
    assert_send_sync::<Cell<crate::payload::MultiSlot>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyHash;
    use crate::payload::WeightedSlot;

    fn ctx() -> CellCtx {
        CellCtx {
            small_slots: 6, // 2R with R = 3
            chain: ChainParams {
                cells_per_bucket: 4,
                r: 3,
                expand_threshold: 0.9,
                contract_threshold: 0.5,
                max_kicks: 100,
                base_len: 8,
            },
            seed: 0xfeed,
        }
    }

    fn kh(v: NodeId) -> KeyHash {
        KeyHash::new(v)
    }

    fn scratch() -> RebuildScratch<NodeId> {
        RebuildScratch::persistent()
    }

    fn arena() -> SlotArena<NodeId> {
        SlotArena::new(ctx().small_slots)
    }

    fn scan() -> ScanArena {
        ScanArena::new(true)
    }

    #[test]
    fn small_slots_hold_up_to_capacity_inline() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(42);
        let mut rng = KickRng::new(1);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        for v in 0..6u64 {
            assert_eq!(
                cell.insert(
                    v,
                    kh(v),
                    &ctx,
                    &mut arena,
                    &mut rng,
                    &mut p,
                    &mut s,
                    &mut sc
                ),
                NeighborInsert::Stored { expanded: false }
            );
        }
        assert_eq!(cell.degree(), 6);
        assert!(!cell.is_transformed());
        assert_eq!(cell.scht_tables(), 0);
        assert_eq!(arena.block_count(), 1, "one block per inline cell");
        for v in 0..6u64 {
            assert!(cell.contains(kh(v), &arena));
        }
    }

    #[test]
    fn seventh_neighbor_triggers_transformation() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(42);
        let mut rng = KickRng::new(2);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        for v in 0..6u64 {
            cell.insert(
                v,
                kh(v),
                &ctx,
                &mut arena,
                &mut rng,
                &mut p,
                &mut s,
                &mut sc,
            );
        }
        // The 7th neighbour exceeds 2R = 6: all v move into the 1st S-CHT.
        let res = cell.insert(
            6,
            kh(6),
            &ctx,
            &mut arena,
            &mut rng,
            &mut p,
            &mut s,
            &mut sc,
        );
        assert_eq!(res, NeighborInsert::Stored { expanded: true });
        assert!(cell.is_transformed());
        assert_eq!(cell.scht_tables(), 1);
        assert_eq!(cell.degree(), 7);
        assert_eq!(arena.free_count(), 1, "transformation frees the block");
        for v in 0..7u64 {
            assert!(
                cell.contains(kh(v), &arena),
                "lost {v} during transformation"
            );
        }
    }

    /// Mimics the engine's fallback when an insertion exceeds the kick budget
    /// and no denylist is available: force an expansion and retry.
    #[allow(clippy::too_many_arguments)]
    fn insert_with_fallback(
        cell: &mut Cell<NodeId>,
        v: NodeId,
        ctx: &CellCtx,
        arena: &mut SlotArena<NodeId>,
        rng: &mut KickRng,
        p: &mut u64,
        s: &mut RebuildScratch<NodeId>,
        sc: &mut ScanArena,
    ) -> bool {
        let mut pending = v;
        let mut expanded_any = false;
        loop {
            match cell.insert(pending, kh(pending), ctx, arena, rng, p, s, sc) {
                NeighborInsert::Stored { expanded } => return expanded_any || expanded,
                NeighborInsert::Failed(back) => {
                    let displaced = cell.force_expand(ctx, arena, rng, p, s, sc);
                    assert!(displaced.is_empty(), "forced expansion displaced items");
                    expanded_any = true;
                    pending = back;
                }
            }
        }
    }

    #[test]
    fn large_degree_grows_the_chain() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(3);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        let mut expansions = 0;
        for v in 0..500u64 {
            if insert_with_fallback(
                &mut cell, v, &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc,
            ) {
                expansions += 1;
            }
        }
        assert!(expansions > 1, "chain never grew");
        assert_eq!(cell.degree(), 500);
        assert!(cell.scht_slots() >= 500);
        let mut neighbors = cell.neighbors(&arena);
        neighbors.sort_unstable();
        assert_eq!(neighbors, (0..500u64).collect::<Vec<_>>());
    }

    #[test]
    fn remove_from_small_slots() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(4);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        for v in 0..4u64 {
            cell.insert(
                v,
                kh(v),
                &ctx,
                &mut arena,
                &mut rng,
                &mut p,
                &mut s,
                &mut sc,
            );
        }
        let r = cell.remove(kh(2), &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc);
        assert_eq!(r.removed, Some(2));
        assert!(!r.contracted);
        assert!(!cell.contains(kh(2), &arena));
        assert_eq!(cell.degree(), 3);
        let missing = cell.remove(kh(99), &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc);
        assert_eq!(missing.removed, None);
        // The vacated tail of the live prefix is re-fillered, not stale.
        assert_eq!(arena.slots(0)[3], NodeId::filler());
        arena.assert_free_blocks_clean();
    }

    #[test]
    fn deletions_collapse_chain_back_to_small_slots() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(5);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        for v in 0..60u64 {
            insert_with_fallback(
                &mut cell, v, &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc,
            );
        }
        assert!(cell.is_transformed());
        for v in 0..56u64 {
            let r = cell.remove(kh(v), &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc);
            assert_eq!(r.removed, Some(v));
            // Displaced payloads must be re-offered to the cell so nothing is lost.
            let mut displaced = r.displaced;
            let rejected = cell.reinsert_from(
                &mut displaced,
                &ctx,
                &mut arena,
                &mut rng,
                &mut p,
                &mut s,
                &mut sc,
            );
            assert!(rejected.is_empty());
            assert!(
                displaced.is_empty(),
                "reinsert_from must consume the buffer"
            );
        }
        assert!(
            !cell.is_transformed(),
            "chain should collapse back to inline slots"
        );
        assert_eq!(cell.degree(), 4);
        for v in 56..60u64 {
            assert!(cell.contains(kh(v), &arena));
        }
        assert!(
            s.pool_stats().retired > 0,
            "collapse must retire the chain's tables"
        );
    }

    #[test]
    fn weighted_payloads_update_in_place() {
        let ctx = CellCtx {
            small_slots: 3,
            ..ctx()
        };
        let mut arena: SlotArena<WeightedSlot> = SlotArena::new(ctx.small_slots);
        let mut cell: Cell<WeightedSlot> = Cell::new(9);
        let mut rng = KickRng::new(6);
        let mut p = 0;
        let mut s: RebuildScratch<WeightedSlot> = RebuildScratch::persistent();
        let mut sc = scan();
        cell.insert(
            WeightedSlot { v: 5, w: 1 },
            kh(5),
            &ctx,
            &mut arena,
            &mut rng,
            &mut p,
            &mut s,
            &mut sc,
        );
        cell.get_mut(kh(5), &mut arena).unwrap().w += 4;
        assert_eq!(cell.get(kh(5), &arena).unwrap().w, 5);
    }

    #[test]
    fn cell_reports_heap_bytes() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(7);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        assert_eq!(cell.part2_bytes(), 0, "inline storage lives in the arena");
        for v in 0..100u64 {
            insert_with_fallback(
                &mut cell, v, &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc,
            );
        }
        assert!(cell.part2_bytes() > 0, "chain bytes are cell-owned");
        // Payload trait implementation mirrors part2_bytes.
        assert_eq!(cell.heap_bytes(), cell.part2_bytes());
        assert_eq!(cell.key(), 1);
        // And the filler cell owns nothing, as the flat table layout requires.
        let f: Cell<NodeId> = Cell::filler();
        assert_eq!(f.heap_bytes(), 0);
        assert_eq!(f.degree(), 0);
    }

    #[test]
    fn reinsert_from_skips_duplicates() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(8);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        cell.insert(
            10,
            kh(10),
            &ctx,
            &mut arena,
            &mut rng,
            &mut p,
            &mut s,
            &mut sc,
        );
        let mut parked = vec![10, 11, 12];
        let rejected = cell.reinsert_from(
            &mut parked,
            &ctx,
            &mut arena,
            &mut rng,
            &mut p,
            &mut s,
            &mut sc,
        );
        assert!(rejected.is_empty());
        assert!(parked.is_empty());
        assert_eq!(cell.degree(), 3);
    }

    #[test]
    fn for_each_and_scalar_agree_inline_and_chained() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(2);
        let mut rng = KickRng::new(9);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        for count in [4usize, 40] {
            let mut cell2 = cell.clone();
            for v in cell2.degree() as u64..count as u64 {
                insert_with_fallback(
                    &mut cell2, v, &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc,
                );
            }
            let mut swar = Vec::new();
            cell2.for_each(&arena, |&v| swar.push(v));
            let mut scalar = Vec::new();
            cell2.for_each_scalar(&arena, |&v| scalar.push(v));
            swar.sort_unstable();
            scalar.sort_unstable();
            assert_eq!(swar, scalar, "degree {count}");
            assert_eq!(swar.len(), count);
            cell = cell2;
        }
    }

    /// The scan segment tracks chain membership exactly through the whole
    /// lifecycle: transformation builds it, inserts append, removes
    /// tombstone (compacting past the 1/4-waste threshold), and the collapse
    /// back to inline slots releases it.
    #[test]
    fn scan_segment_mirrors_chain_membership() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(3);
        let mut rng = KickRng::new(11);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        assert_eq!(cell.seg_id(), NO_SEG, "inline cells carry no segment");
        for v in 0..40u64 {
            insert_with_fallback(
                &mut cell, v, &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc,
            );
            let seg = cell.seg_id();
            if cell.is_transformed() {
                let mut from_seg = Vec::new();
                sc.for_each(seg, |x| from_seg.push(x));
                from_seg.sort_unstable();
                let mut from_chain = cell.neighbors(&arena);
                from_chain.sort_unstable();
                assert_eq!(from_seg, from_chain, "after inserting {v}");
            } else {
                assert_eq!(seg, NO_SEG);
            }
        }
        for v in 0..37u64 {
            let r = cell.remove(kh(v), &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc);
            assert_eq!(r.removed, Some(v));
            let mut displaced = r.displaced;
            cell.reinsert_from(
                &mut displaced,
                &ctx,
                &mut arena,
                &mut rng,
                &mut p,
                &mut s,
                &mut sc,
            );
            if cell.is_transformed() {
                let mut from_seg = Vec::new();
                sc.for_each(cell.seg_id(), |x| from_seg.push(x));
                from_seg.sort_unstable();
                let mut from_chain = cell.neighbors(&arena);
                from_chain.sort_unstable();
                assert_eq!(from_seg, from_chain, "after removing {v}");
            }
        }
        assert!(!cell.is_transformed(), "cell should have collapsed");
        assert_eq!(cell.seg_id(), NO_SEG, "collapse must release the segment");
        assert!(sc.tombstones() > 0, "removals never tombstoned");
        assert!(
            sc.compactions() > 0,
            "sustained deletions never crossed the compaction threshold"
        );
    }

    /// A disabled scan arena keeps every hook a no-op: the cell works
    /// identically and never allocates a segment.
    #[test]
    fn disabled_scan_arena_leaves_cells_segmentless() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(4);
        let mut rng = KickRng::new(12);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = ScanArena::new(false);
        for v in 0..30u64 {
            insert_with_fallback(
                &mut cell, v, &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc,
            );
        }
        assert!(cell.is_transformed());
        assert_eq!(cell.seg_id(), NO_SEG);
        assert_eq!(sc.memory_bytes(), 0);
        let mut n = cell.neighbors(&arena);
        n.sort_unstable();
        assert_eq!(n, (0..30u64).collect::<Vec<_>>());
    }

    /// Collapse round-trips through the arena: chain → block → chain → block,
    /// with compaction remaps in between keeping the cell's index valid.
    #[test]
    fn collapse_allocates_a_fresh_block_and_remap_tracks_compaction() {
        let ctx = ctx();
        let mut arena = arena();
        let mut cell: Cell<NodeId> = Cell::new(7);
        let mut rng = KickRng::new(10);
        let mut p = 0;
        let mut s = scratch();
        let mut sc = scan();
        // Grow past the threshold, then shrink back under it.
        for v in 0..40u64 {
            insert_with_fallback(
                &mut cell, v, &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc,
            );
        }
        for v in 0..37u64 {
            let r = cell.remove(kh(v), &ctx, &mut arena, &mut rng, &mut p, &mut s, &mut sc);
            assert_eq!(r.removed, Some(v));
            let mut displaced = r.displaced;
            cell.reinsert_from(
                &mut displaced,
                &ctx,
                &mut arena,
                &mut rng,
                &mut p,
                &mut s,
                &mut sc,
            );
        }
        assert!(!cell.is_transformed());
        assert_eq!(cell.degree(), 3);

        // Compact and remap: the cell must still see its three survivors.
        let remap = arena.compact();
        cell.remap_block(&remap);
        let mut n = cell.neighbors(&arena);
        n.sort_unstable();
        assert_eq!(n, vec![37, 38, 39]);
        assert_eq!(arena.free_count(), 0);
    }
}
