//! L-CHT cells: Part 1 (the source node `u`) plus the transformable Part 2.
//!
//! Part 2 starts as up to `2R` inline **small slots** (or `R` for the weighted
//! variant) that hold neighbour payloads directly. Once the degree exceeds the
//! inline capacity the slots "merge in pairs" into pointer slots: concretely,
//! the payloads move into an S-CHT chain ([`TableChain`]) owned by the cell,
//! which then grows and shrinks per the TRANSFORMATION rule. A chain that
//! shrinks back to the inline capacity collapses into small slots again.

use crate::chain::{ChainInsert, ChainParams, TableChain};
use crate::hash::{splitmix64, KeyHash};
use crate::payload::Payload;
use crate::rng::KickRng;
use crate::scratch::RebuildScratch;
use graph_api::NodeId;

/// Everything a cell needs to know to manage its Part 2. Borrowed from the
/// engine on every call so cells stay small.
#[derive(Debug, Clone, Copy)]
pub struct CellCtx {
    /// Inline capacity of Part 2 before it transforms (`2R` basic, `R` weighted).
    pub small_slots: usize,
    /// Parameters of the S-CHT chain the cell transforms into.
    pub chain: ChainParams,
    /// Base seed; per-cell chains derive their hash seeds from it and `u`.
    pub seed: u64,
}

/// Result of placing a neighbour payload into a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeighborInsert<P> {
    /// The payload found a home. `expanded` reports whether the S-CHT chain
    /// changed shape while absorbing it, which tells the engine to drain the
    /// matching S-DL entries back in (§ III-A2, step 3).
    Stored {
        /// True if the chain enabled a table or merged during this insertion.
        expanded: bool,
    },
    /// The kick-out budget was exhausted; the payload is handed back so the
    /// engine can park it in the S-DL or force an expansion.
    Failed(P),
}

/// Result of removing a neighbour payload from a cell.
#[derive(Debug)]
pub struct NeighborRemove<P> {
    /// The removed payload, if the neighbour was present.
    pub removed: Option<P>,
    /// Payloads that lost their slot while the chain contracted and could not
    /// be re-placed; the engine parks them in the S-DL so nothing is lost.
    pub displaced: Vec<P>,
    /// True if the chain contracted or collapsed back to small slots.
    pub contracted: bool,
}

/// Opaque coordinates of a payload inside a cell's Part 2, produced by
/// [`Cell::find_slot`] and consumed by [`Cell::payload_at_mut`]. Valid only
/// until the next mutation of the cell.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CellSlot {
    /// Index into the inline small slots.
    Small(usize),
    /// Chain coordinates (table, (array, flat slot)).
    Chain((usize, (usize, usize))),
}

/// Part 2 of a cell: inline small slots or an S-CHT chain.
#[derive(Debug, Clone)]
enum Part2<P> {
    /// Inline neighbour storage (degree ≤ `2R`).
    Small(Vec<P>),
    /// Degree outgrew the inline slots: neighbours live in an S-CHT chain.
    Chain(Box<TableChain<P>>),
}

/// One L-CHT cell: the node `u` plus its transformable neighbour storage.
#[derive(Debug, Clone)]
pub struct Cell<P> {
    u: NodeId,
    part2: Part2<P>,
}

impl<P: Payload> Cell<P> {
    /// Creates an empty cell for node `u`.
    pub fn new(u: NodeId) -> Self {
        Self {
            u,
            part2: Part2::Small(Vec::new()),
        }
    }

    /// The node stored in Part 1.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.u
    }

    /// Current degree (neighbours stored in this cell; S-DL entries for `u`
    /// are tracked by the engine).
    pub fn degree(&self) -> usize {
        match &self.part2 {
            Part2::Small(slots) => slots.len(),
            Part2::Chain(chain) => chain.count(),
        }
    }

    /// True if Part 2 has transformed into an S-CHT chain.
    pub fn is_transformed(&self) -> bool {
        matches!(self.part2, Part2::Chain(_))
    }

    /// Number of S-CHT tables hanging off this cell (0 while inline).
    pub fn scht_tables(&self) -> usize {
        match &self.part2 {
            Part2::Small(_) => 0,
            Part2::Chain(chain) => chain.table_count(),
        }
    }

    /// Total S-CHT slot capacity of this cell (0 while inline).
    pub fn scht_slots(&self) -> usize {
        match &self.part2 {
            Part2::Small(_) => 0,
            Part2::Chain(chain) => chain.capacity(),
        }
    }

    /// Looks up the payload stored for neighbour `kh.key()`.
    pub fn get(&self, kh: KeyHash) -> Option<&P> {
        match &self.part2 {
            Part2::Small(slots) => {
                let v = kh.key();
                slots.iter().find(|p| p.key() == v)
            }
            Part2::Chain(chain) => chain.get(kh),
        }
    }

    /// Mutable lookup of the payload stored for neighbour `kh.key()`.
    pub fn get_mut(&mut self, kh: KeyHash) -> Option<&mut P> {
        match &mut self.part2 {
            Part2::Small(slots) => {
                let v = kh.key();
                slots.iter_mut().find(|p| p.key() == v)
            }
            Part2::Chain(chain) => chain.get_mut(kh),
        }
    }

    /// True if neighbour `kh.key()` is stored in this cell.
    pub fn contains(&self, kh: KeyHash) -> bool {
        self.find_slot(kh).is_some()
    }

    /// Locates neighbour `kh.key()` in Part 2, returning opaque coordinates
    /// for [`Cell::payload_at_mut`] — one probe resolves "update or insert"
    /// flows that previously probed twice.
    pub(crate) fn find_slot(&self, kh: KeyHash) -> Option<CellSlot> {
        match &self.part2 {
            Part2::Small(slots) => {
                let v = kh.key();
                slots.iter().position(|p| p.key() == v).map(CellSlot::Small)
            }
            Part2::Chain(chain) => chain.find_index(kh).map(CellSlot::Chain),
        }
    }

    /// Direct access to a payload located by [`Cell::find_slot`].
    pub(crate) fn payload_at_mut(&mut self, slot: CellSlot) -> &mut P {
        match (&mut self.part2, slot) {
            (Part2::Small(slots), CellSlot::Small(i)) => &mut slots[i],
            (Part2::Chain(chain), CellSlot::Chain(pos)) => chain.item_at_mut(pos),
            _ => unreachable!("cell slot coordinates from a different Part 2 shape"),
        }
    }

    /// Lazy probe by raw key: an inline cell compares keys directly — **no
    /// hashing at all**, matching the pre-PR-4 cost of the (very common)
    /// low-degree case — while a transformed cell pays the one memoized Bob
    /// pass. Callers that already hold a [`KeyHash`] use [`Cell::get`].
    pub fn get_lazy(&self, v: NodeId) -> Option<&P> {
        match &self.part2 {
            Part2::Small(slots) => slots.iter().find(|p| p.key() == v),
            Part2::Chain(chain) => chain.get(KeyHash::new(v)),
        }
    }

    /// Mutable counterpart of [`Cell::get_lazy`].
    pub fn get_mut_lazy(&mut self, v: NodeId) -> Option<&mut P> {
        match &mut self.part2 {
            Part2::Small(slots) => slots.iter_mut().find(|p| p.key() == v),
            Part2::Chain(chain) => chain.get_mut(KeyHash::new(v)),
        }
    }

    /// Lazy counterpart of [`Cell::remove`]: hash-free on inline cells, one
    /// memoized Bob pass on transformed ones.
    pub fn remove_lazy(
        &mut self,
        v: NodeId,
        ctx: &CellCtx,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
    ) -> NeighborRemove<P> {
        if let Part2::Small(slots) = &mut self.part2 {
            let removed = slots
                .iter()
                .position(|p| p.key() == v)
                .map(|idx| slots.swap_remove(idx));
            return NeighborRemove {
                removed,
                displaced: Vec::new(),
                contracted: false,
            };
        }
        self.remove(KeyHash::new(v), ctx, rng, placements, scratch)
    }

    /// Pre-change reference probe of Part 2 (per-table re-hash, full payload
    /// compares, no tags) — the oracle/baseline counterpart of
    /// [`Cell::contains`].
    pub fn contains_unmemoized(&self, v: NodeId) -> bool {
        match &self.part2 {
            Part2::Small(slots) => slots.iter().any(|p| p.key() == v),
            Part2::Chain(chain) => chain.contains_unmemoized(v),
        }
    }

    /// Prefetches the candidate tag lines a probe for `kh` would read. Inline
    /// small slots need no prefetch (the cell itself is already resident when
    /// the caller holds it).
    #[inline]
    pub fn prefetch(&self, kh: KeyHash) {
        if let Part2::Chain(chain) = &self.part2 {
            chain.prefetch(kh);
        }
    }

    /// Calls `f` for every neighbour payload in this cell. Chained cells walk
    /// their tables' tag words (SWAR occupancy scan); inline cells iterate the
    /// small slots directly.
    pub fn for_each(&self, mut f: impl FnMut(&P)) {
        match &self.part2 {
            Part2::Small(slots) => {
                for p in slots {
                    f(p);
                }
            }
            Part2::Chain(chain) => chain.for_each(f),
        }
    }

    /// Pre-SWAR iteration over the neighbour payloads — the scalar oracle and
    /// scan-guard baseline counterpart of [`Cell::for_each`]. Identical on
    /// inline cells (they have no tag arrays to scan).
    pub fn for_each_scalar(&self, mut f: impl FnMut(&P)) {
        match &self.part2 {
            Part2::Small(slots) => {
                for p in slots {
                    f(p);
                }
            }
            Part2::Chain(chain) => chain.for_each_scalar(f),
        }
    }

    /// The neighbour ids stored in this cell.
    pub fn neighbors(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.degree());
        self.for_each(|p| out.push(p.key()));
        out
    }

    fn chain_seed(ctx: &CellCtx, u: NodeId) -> u64 {
        splitmix64(ctx.seed ^ u.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Inserts a neighbour payload (memoized hash `kh`) whose key is **not**
    /// already present (callers use [`Cell::get_mut`] for updates). Handles
    /// the small-slot → chain TRANSFORMATION and chain growth; any resize the
    /// insertion triggers rebuilds through the caller's `scratch`.
    pub fn insert(
        &mut self,
        payload: P,
        kh: KeyHash,
        ctx: &CellCtx,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
    ) -> NeighborInsert<P> {
        debug_assert_eq!(
            payload.key(),
            kh.key(),
            "payload inserted under foreign hash"
        );
        debug_assert!(!self.contains(kh), "insert of duplicate neighbour");
        match &mut self.part2 {
            Part2::Small(slots) => {
                if slots.len() < ctx.small_slots {
                    slots.push(payload);
                    return NeighborInsert::Stored { expanded: false };
                }
                // TRANSFORMATION: 2R small slots merge into pointer slots and
                // every stored v moves into the freshly enabled 1st S-CHT.
                // Already-stored neighbours must never be lost, so they are
                // placed with the forced path (which expands the chain as
                // needed); only the *new* payload may be reported as failed,
                // so the caller's denylist accounting stays simple.
                let mut chain = TableChain::new(ctx.chain, Self::chain_seed(ctx, self.u));
                for existing in slots.drain(..) {
                    chain.insert_forced(existing, rng, placements, scratch);
                }
                let result = match chain.insert(payload, kh, rng, placements, scratch) {
                    ChainInsert::Stored => NeighborInsert::Stored { expanded: true },
                    ChainInsert::Failed(p) => NeighborInsert::Failed(p),
                };
                self.part2 = Part2::Chain(Box::new(chain));
                result
            }
            Part2::Chain(chain) => {
                let before = chain.expansions();
                match chain.insert(payload, kh, rng, placements, scratch) {
                    ChainInsert::Stored => NeighborInsert::Stored {
                        expanded: chain.expansions() > before,
                    },
                    ChainInsert::Failed(p) => NeighborInsert::Failed(p),
                }
            }
        }
    }

    /// Forces one expansion step of Part 2: an inline cell transforms into a
    /// chain immediately, a chained cell grows its chain by one step. Returns
    /// payloads displaced by a merge that could not be re-placed. Used by the
    /// engine when the S-DL is full or disabled.
    pub fn force_expand(
        &mut self,
        ctx: &CellCtx,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
    ) -> Vec<P> {
        match &mut self.part2 {
            Part2::Small(slots) => {
                let mut chain = TableChain::new(ctx.chain, Self::chain_seed(ctx, self.u));
                for existing in slots.drain(..) {
                    chain.insert_forced(existing, rng, placements, scratch);
                }
                self.part2 = Part2::Chain(Box::new(chain));
                Vec::new()
            }
            Part2::Chain(chain) => chain.expand(rng, placements, scratch),
        }
    }

    /// Re-inserts payloads drained from the S-DL after an expansion, consuming
    /// `items` in place (the engine hands its reusable drain buffer, which
    /// comes back empty). Payloads that still cannot be placed are handed back
    /// (the engine re-parks them).
    pub fn reinsert_from(
        &mut self,
        items: &mut Vec<P>,
        ctx: &CellCtx,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
    ) -> Vec<P> {
        let mut rejected = Vec::new();
        while let Some(item) = items.pop() {
            let kh = item.key_hash();
            if self.contains(kh) {
                // Should not happen (the engine checks before parking), but a
                // duplicate must never corrupt the cuckoo invariant.
                continue;
            }
            match self.insert(item, kh, ctx, rng, placements, scratch) {
                NeighborInsert::Stored { .. } => {}
                NeighborInsert::Failed(p) => rejected.push(p),
            }
        }
        rejected
    }

    /// Removes neighbour `kh.key()`, applying the reverse TRANSFORMATION when
    /// the chain's loading rate drops below `Λ` and collapsing back to inline
    /// small slots when everything fits again.
    pub fn remove(
        &mut self,
        kh: KeyHash,
        ctx: &CellCtx,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<P>,
    ) -> NeighborRemove<P> {
        match &mut self.part2 {
            Part2::Small(slots) => {
                let v = kh.key();
                let removed = slots
                    .iter()
                    .position(|p| p.key() == v)
                    .map(|idx| slots.swap_remove(idx));
                NeighborRemove {
                    removed,
                    displaced: Vec::new(),
                    contracted: false,
                }
            }
            Part2::Chain(chain) => {
                let removed = chain.remove(kh);
                if removed.is_none() {
                    return NeighborRemove {
                        removed,
                        displaced: Vec::new(),
                        contracted: false,
                    };
                }
                let contracted;
                let mut displaced = Vec::new();
                // Collapse back to inline slots once everything fits again —
                // the end state of the reverse transformation.
                if chain.count() <= ctx.small_slots {
                    let items = chain.drain_reset();
                    self.part2 = Part2::Small(items);
                    contracted = true;
                } else {
                    let before = chain.contractions();
                    displaced = chain.maybe_contract(rng, placements, scratch);
                    contracted = chain.contractions() > before;
                }
                NeighborRemove {
                    removed,
                    displaced,
                    contracted,
                }
            }
        }
    }

    /// Heap bytes owned by Part 2 (inline slot buffer or the whole chain).
    pub fn part2_bytes(&self) -> usize {
        match &self.part2 {
            Part2::Small(slots) => {
                slots.capacity() * std::mem::size_of::<P>()
                    + slots.iter().map(Payload::heap_bytes).sum::<usize>()
            }
            Part2::Chain(chain) => std::mem::size_of::<TableChain<P>>() + chain.memory_bytes(),
        }
    }
}

impl<P: Payload> Payload for Cell<P> {
    #[inline]
    fn key(&self) -> NodeId {
        self.u
    }

    fn heap_bytes(&self) -> usize {
        self.part2_bytes()
    }
}

/// Compile-time proof that cells (and their transformable Part 2) are
/// `Send + Sync`, as the sharded engine's thread fan-out requires.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Cell<NodeId>>();
    assert_send_sync::<Cell<crate::payload::WeightedSlot>>();
    assert_send_sync::<Cell<crate::payload::MultiSlot>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyHash;
    use crate::payload::WeightedSlot;

    fn ctx() -> CellCtx {
        CellCtx {
            small_slots: 6, // 2R with R = 3
            chain: ChainParams {
                cells_per_bucket: 4,
                r: 3,
                expand_threshold: 0.9,
                contract_threshold: 0.5,
                max_kicks: 100,
                base_len: 8,
            },
            seed: 0xfeed,
        }
    }

    fn kh(v: NodeId) -> KeyHash {
        KeyHash::new(v)
    }

    fn scratch() -> RebuildScratch<NodeId> {
        RebuildScratch::persistent()
    }

    #[test]
    fn small_slots_hold_up_to_capacity_inline() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(42);
        let mut rng = KickRng::new(1);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..6u64 {
            assert_eq!(
                cell.insert(v, kh(v), &ctx, &mut rng, &mut p, &mut s),
                NeighborInsert::Stored { expanded: false }
            );
        }
        assert_eq!(cell.degree(), 6);
        assert!(!cell.is_transformed());
        assert_eq!(cell.scht_tables(), 0);
        for v in 0..6u64 {
            assert!(cell.contains(kh(v)));
        }
    }

    #[test]
    fn seventh_neighbor_triggers_transformation() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(42);
        let mut rng = KickRng::new(2);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..6u64 {
            cell.insert(v, kh(v), &ctx, &mut rng, &mut p, &mut s);
        }
        // The 7th neighbour exceeds 2R = 6: all v move into the 1st S-CHT.
        let res = cell.insert(6, kh(6), &ctx, &mut rng, &mut p, &mut s);
        assert_eq!(res, NeighborInsert::Stored { expanded: true });
        assert!(cell.is_transformed());
        assert_eq!(cell.scht_tables(), 1);
        assert_eq!(cell.degree(), 7);
        for v in 0..7u64 {
            assert!(cell.contains(kh(v)), "lost {v} during transformation");
        }
    }

    /// Mimics the engine's fallback when an insertion exceeds the kick budget
    /// and no denylist is available: force an expansion and retry.
    fn insert_with_fallback(
        cell: &mut Cell<NodeId>,
        v: NodeId,
        ctx: &CellCtx,
        rng: &mut KickRng,
        p: &mut u64,
        s: &mut RebuildScratch<NodeId>,
    ) -> bool {
        let mut pending = v;
        let mut expanded_any = false;
        loop {
            match cell.insert(pending, kh(pending), ctx, rng, p, s) {
                NeighborInsert::Stored { expanded } => return expanded_any || expanded,
                NeighborInsert::Failed(back) => {
                    let displaced = cell.force_expand(ctx, rng, p, s);
                    assert!(displaced.is_empty(), "forced expansion displaced items");
                    expanded_any = true;
                    pending = back;
                }
            }
        }
    }

    #[test]
    fn large_degree_grows_the_chain() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(3);
        let mut p = 0;
        let mut s = scratch();
        let mut expansions = 0;
        for v in 0..500u64 {
            if insert_with_fallback(&mut cell, v, &ctx, &mut rng, &mut p, &mut s) {
                expansions += 1;
            }
        }
        assert!(expansions > 1, "chain never grew");
        assert_eq!(cell.degree(), 500);
        assert!(cell.scht_slots() >= 500);
        let mut neighbors = cell.neighbors();
        neighbors.sort_unstable();
        assert_eq!(neighbors, (0..500u64).collect::<Vec<_>>());
    }

    #[test]
    fn remove_from_small_slots() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(4);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..4u64 {
            cell.insert(v, kh(v), &ctx, &mut rng, &mut p, &mut s);
        }
        let r = cell.remove(kh(2), &ctx, &mut rng, &mut p, &mut s);
        assert_eq!(r.removed, Some(2));
        assert!(!r.contracted);
        assert!(!cell.contains(kh(2)));
        assert_eq!(cell.degree(), 3);
        let missing = cell.remove(kh(99), &ctx, &mut rng, &mut p, &mut s);
        assert_eq!(missing.removed, None);
    }

    #[test]
    fn deletions_collapse_chain_back_to_small_slots() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(5);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..60u64 {
            insert_with_fallback(&mut cell, v, &ctx, &mut rng, &mut p, &mut s);
        }
        assert!(cell.is_transformed());
        for v in 0..56u64 {
            let r = cell.remove(kh(v), &ctx, &mut rng, &mut p, &mut s);
            assert_eq!(r.removed, Some(v));
            // Displaced payloads must be re-offered to the cell so nothing is lost.
            let mut displaced = r.displaced;
            let rejected = cell.reinsert_from(&mut displaced, &ctx, &mut rng, &mut p, &mut s);
            assert!(rejected.is_empty());
            assert!(
                displaced.is_empty(),
                "reinsert_from must consume the buffer"
            );
        }
        assert!(
            !cell.is_transformed(),
            "chain should collapse back to inline slots"
        );
        assert_eq!(cell.degree(), 4);
        for v in 56..60u64 {
            assert!(cell.contains(kh(v)));
        }
    }

    #[test]
    fn weighted_payloads_update_in_place() {
        let ctx = CellCtx {
            small_slots: 3,
            ..ctx()
        };
        let mut cell: Cell<WeightedSlot> = Cell::new(9);
        let mut rng = KickRng::new(6);
        let mut p = 0;
        let mut s: RebuildScratch<WeightedSlot> = RebuildScratch::persistent();
        cell.insert(
            WeightedSlot { v: 5, w: 1 },
            kh(5),
            &ctx,
            &mut rng,
            &mut p,
            &mut s,
        );
        cell.get_mut(kh(5)).unwrap().w += 4;
        assert_eq!(cell.get(kh(5)).unwrap().w, 5);
    }

    #[test]
    fn cell_reports_heap_bytes() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(7);
        let mut p = 0;
        let mut s = scratch();
        let empty = cell.part2_bytes();
        for v in 0..100u64 {
            cell.insert(v, kh(v), &ctx, &mut rng, &mut p, &mut s);
        }
        assert!(cell.part2_bytes() > empty);
        // Payload trait implementation mirrors part2_bytes.
        assert_eq!(cell.heap_bytes(), cell.part2_bytes());
        assert_eq!(cell.key(), 1);
    }

    #[test]
    fn reinsert_from_skips_duplicates() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(1);
        let mut rng = KickRng::new(8);
        let mut p = 0;
        let mut s = scratch();
        cell.insert(10, kh(10), &ctx, &mut rng, &mut p, &mut s);
        let mut parked = vec![10, 11, 12];
        let rejected = cell.reinsert_from(&mut parked, &ctx, &mut rng, &mut p, &mut s);
        assert!(rejected.is_empty());
        assert!(parked.is_empty());
        assert_eq!(cell.degree(), 3);
    }

    #[test]
    fn for_each_and_scalar_agree_inline_and_chained() {
        let ctx = ctx();
        let mut cell: Cell<NodeId> = Cell::new(2);
        let mut rng = KickRng::new(9);
        let mut p = 0;
        let mut s = scratch();
        for count in [4usize, 40] {
            let mut cell2 = cell.clone();
            for v in cell2.degree() as u64..count as u64 {
                insert_with_fallback(&mut cell2, v, &ctx, &mut rng, &mut p, &mut s);
            }
            let mut swar = Vec::new();
            cell2.for_each(|&v| swar.push(v));
            let mut scalar = Vec::new();
            cell2.for_each_scalar(|&v| scalar.push(v));
            swar.sort_unstable();
            scalar.sort_unstable();
            assert_eq!(swar, scalar, "degree {count}");
            assert_eq!(swar.len(), count);
            cell = cell2;
        }
    }
}
