//! SNAP-style edge-list loading, so the real datasets (NotreDame, WikiTalk,
//! StackOverflow, ...) can be dropped in when they are available locally.
//!
//! The format is the one used by the SNAP repository the paper links to:
//! whitespace-separated `source destination [extra columns]` lines, with `#`
//! comment lines. Extra columns (e.g. the timestamp of the StackOverflow
//! temporal network) are ignored.

use graph_api::NodeId;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Parses SNAP edge-list text into an edge stream. Malformed lines are
/// reported with their line number.
pub fn parse_snap_edge_list<R: Read>(reader: R) -> std::io::Result<Vec<(NodeId, NodeId)>> {
    let reader = BufReader::new(reader);
    let mut edges = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse = |field: Option<&str>| -> Option<NodeId> { field?.parse().ok() };
        match (parse(fields.next()), parse(fields.next())) {
            (Some(u), Some(v)) => edges.push((u, v)),
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed edge on line {}: {trimmed:?}", line_no + 1),
                ))
            }
        }
    }
    Ok(edges)
}

/// Loads a SNAP edge-list file from disk.
pub fn load_snap_edge_list<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<(NodeId, NodeId)>> {
    let file = std::fs::File::open(path)?;
    parse_snap_edge_list(file)
}

/// Path of the tiny SNAP-style edge-list fixture committed with this crate
/// (`data/web_sample.txt`), so tests and examples can exercise the real
/// file-loading path without an external download.
pub fn sample_edge_list_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("data")
        .join("web_sample.txt")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_edges_and_skips_comments() {
        let text = "# Directed graph\n# Nodes: 3 Edges: 3\n0\t1\n1 2\n2 0 1356130000\n";
        let edges = parse_snap_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn blank_lines_and_percent_comments_are_ignored() {
        let text = "% konect header\n\n5 6\n\n";
        let edges = parse_snap_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(5, 6)]);
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let text = "0 1\nnot-a-node 2\n";
        let err = parse_snap_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn file_roundtrip_via_tempfile() {
        let dir = std::env::temp_dir();
        let path = dir.join("cuckoograph_test_edges.txt");
        std::fs::write(&path, "# test\n1 2\n3 4\n").unwrap();
        let edges = load_snap_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(edges, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_snap_edge_list("/nonexistent/path/to/edges.txt").is_err());
    }

    #[test]
    fn committed_fixture_parses() {
        let edges = load_snap_edge_list(sample_edge_list_path()).unwrap();
        assert_eq!(edges.len(), 11, "fixture line count (incl. duplicate)");
        assert_eq!(edges[0], (0, 1));
        assert_eq!(edges[edges.len() - 1], (0, 1), "duplicate closing line");
        assert!(edges.contains(&(14, 15)), "timestamp column is ignored");
    }
}
