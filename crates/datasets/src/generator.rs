//! Synthetic dataset generation matched to the Table IV profiles.
//!
//! For each dataset the generator produces a raw edge stream whose scaled
//! statistics follow the published row: node count, distinct-edge count,
//! duplicate ratio, degree skew (power-law with a matched maximum degree) and
//! density. The scale factor shrinks node and edge counts proportionally so
//! laptop-sized runs finish quickly; `scale = 1.0` reproduces the full counts.

use crate::profile::{DatasetKind, DatasetProfile};
use graph_api::NodeId;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A generated dataset: the raw (possibly duplicated) edge stream plus the
/// profile it was derived from.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which Table IV row this dataset imitates.
    pub kind: DatasetKind,
    /// The scale factor the generator was called with.
    pub scale: f64,
    /// The raw edge stream in arrival order (contains duplicates for the
    /// weighted datasets, exactly like the originals).
    pub raw_edges: Vec<(NodeId, NodeId)>,
}

impl Dataset {
    /// The distinct edges of the stream, in first-arrival order.
    pub fn distinct_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut seen = HashSet::with_capacity(self.raw_edges.len());
        let mut out = Vec::new();
        for &e in &self.raw_edges {
            if seen.insert(e) {
                out.push(e);
            }
        }
        out
    }

    /// The published profile of the imitated dataset.
    pub fn profile(&self) -> DatasetProfile {
        self.kind.profile()
    }

    /// Dataset name (as used in the figures).
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// Generates a dataset imitating `kind` at the given `scale` (fraction of the
/// published node/edge counts; clamped so even tiny scales stay non-empty).
pub fn generate(kind: DatasetKind, scale: f64, seed: u64) -> Dataset {
    let profile = kind.profile();
    let mut rng = StdRng::seed_from_u64(seed ^ (kind as u64).wrapping_mul(0x9e37_79b9));
    let raw_edges = match kind {
        DatasetKind::DenseGraph => generate_dense(&profile, scale, &mut rng),
        DatasetKind::SparseGraph => generate_regular(&profile, scale, &mut rng),
        _ => generate_power_law(&profile, scale, &mut rng),
    };
    Dataset {
        kind,
        scale,
        raw_edges,
    }
}

/// Scaled target counts, never below small floors so tests stay meaningful.
fn scaled_counts(profile: &DatasetProfile, scale: f64) -> (u64, u64, u64) {
    let nodes = ((profile.nodes as f64 * scale).ceil() as u64).max(64);
    let distinct = ((profile.distinct_edges as f64 * scale).ceil() as u64).max(128);
    let raw = ((profile.raw_edges as f64 * scale).ceil() as u64).max(distinct);
    (nodes, distinct, raw)
}

/// Power-law datasets (CAIDA, NotreDame, StackOverflow, WikiTalk, Weibo):
/// source nodes draw their out-degree from a Zipf-like distribution whose tail
/// is capped at the scaled maximum degree; destinations are drawn from a
/// second skewed distribution so in-degrees are also uneven.
fn generate_power_law(profile: &DatasetProfile, scale: f64, rng: &mut StdRng) -> Vec<(u64, u64)> {
    let (nodes, distinct_target, raw_target) = scaled_counts(profile, scale);
    let max_degree = ((profile.max_degree as f64 * scale).ceil() as u64)
        .clamp(8, nodes.saturating_sub(1).max(8));

    // Zipf-ish node popularity: weight(i) ∝ 1 / (i + 1)^alpha. Popular nodes
    // get most of the edges, reproducing the skew the paper highlights
    // ("mostly low-degree nodes and a few high-degree nodes").
    let alpha = 0.8f64;
    let popularity: Vec<f64> = (0..nodes)
        .map(|i| 1.0 / ((i + 1) as f64).powf(alpha))
        .collect();
    let pick = WeightedIndex::new(&popularity).expect("non-empty weights");

    let mut distinct: HashSet<(u64, u64)> = HashSet::with_capacity(distinct_target as usize);
    let mut stream: Vec<(u64, u64)> = Vec::with_capacity(raw_target as usize);
    let mut degree = vec![0u64; nodes as usize];

    // Give the most popular node a guaranteed hub degree close to the scaled
    // maximum so the Max. Deg. column is reproduced, not left to chance.
    let hub = 0u64;
    let hub_target = max_degree.min(nodes - 1);
    let mut v = 1u64;
    while (degree[hub as usize]) < hub_target && v < nodes {
        if distinct.insert((hub, v)) {
            stream.push((hub, v));
            degree[hub as usize] += 1;
            degree[v as usize] += 1;
        }
        v += 1;
    }

    // Fill the remaining distinct edges with skewed endpoints.
    let mut attempts = 0u64;
    let max_attempts = distinct_target * 30;
    while (distinct.len() as u64) < distinct_target && attempts < max_attempts {
        attempts += 1;
        let u = pick.sample(rng) as u64;
        let w = pick.sample(rng) as u64;
        if u == w {
            continue;
        }
        if distinct.insert((u, w)) {
            stream.push((u, w));
            degree[u as usize] += 1;
            degree[w as usize] += 1;
        }
    }

    // Weighted datasets: replay already-present edges (skewed towards popular
    // sources) until the raw stream length matches the duplicate ratio.
    if profile.weighted {
        // `stream` currently holds exactly the distinct edges in insertion
        // order (a deterministic order, unlike iterating the HashSet).
        let existing: Vec<(u64, u64)> = stream.clone();
        while (stream.len() as u64) < raw_target {
            let &(u, w) = existing.choose(rng).expect("non-empty edge set");
            stream.push((u, w));
        }
    }

    stream.shuffle(rng);
    stream
}

/// DenseGraph: a small node set with ~90% of all possible directed edges. The
/// node count scales with √scale so the edge count scales linearly.
fn generate_dense(profile: &DatasetProfile, scale: f64, rng: &mut StdRng) -> Vec<(u64, u64)> {
    let nodes = ((profile.nodes as f64 * scale.sqrt()).ceil() as u64).max(24);
    let mut stream = Vec::new();
    for u in 0..nodes {
        for v in 0..nodes {
            if u != v && rng.gen_bool(profile.density.min(1.0)) {
                stream.push((u, v));
            }
        }
    }
    stream.shuffle(rng);
    stream
}

/// SparseGraph: every node has exactly `avg_degree` out-edges to distinct
/// targets (the paper's synthetic sparse graph has constant degree 6).
fn generate_regular(profile: &DatasetProfile, scale: f64, rng: &mut StdRng) -> Vec<(u64, u64)> {
    let (nodes, _, _) = scaled_counts(profile, scale);
    let degree = profile.avg_degree.round() as u64;
    let mut stream = Vec::with_capacity((nodes * degree) as usize);
    for u in 0..nodes {
        let mut targets = HashSet::with_capacity(degree as usize);
        while (targets.len() as u64) < degree.min(nodes - 1) {
            let v = rng.gen_range(0..nodes);
            if v != u && targets.insert(v) {
                stream.push((u, v));
            }
        }
    }
    stream.shuffle(rng);
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::compute_stats;

    #[test]
    fn caida_like_stream_has_heavy_duplication() {
        let ds = generate(DatasetKind::Caida, 0.003, 1);
        let stats = compute_stats(&ds.raw_edges);
        let published = DatasetKind::Caida.profile();
        let published_ratio = published.raw_edges as f64 / published.distinct_edges as f64;
        let generated_ratio = stats.raw_edges as f64 / stats.distinct_edges as f64;
        assert!(
            (generated_ratio - published_ratio).abs() / published_ratio < 0.25,
            "duplicate ratio {generated_ratio} vs published {published_ratio}"
        );
    }

    #[test]
    fn notredame_like_stream_matches_average_degree() {
        let ds = generate(DatasetKind::NotreDame, 0.01, 2);
        let stats = compute_stats(&ds.raw_edges);
        let published = DatasetKind::NotreDame.profile();
        assert!(
            (stats.avg_degree - published.avg_degree).abs() / published.avg_degree < 0.35,
            "avg degree {} vs published {}",
            stats.avg_degree,
            published.avg_degree
        );
        assert_eq!(stats.raw_edges, stats.distinct_edges);
    }

    #[test]
    fn power_law_datasets_have_a_dominant_hub() {
        let ds = generate(DatasetKind::WikiTalk, 0.002, 3);
        let stats = compute_stats(&ds.raw_edges);
        // The hub's degree dwarfs the average, as in the published Max. Deg.
        assert!(stats.max_degree as f64 > 20.0 * stats.avg_degree);
    }

    #[test]
    fn dense_graph_is_dense_and_sparse_graph_is_regular() {
        let dense = generate(DatasetKind::DenseGraph, 0.0005, 4);
        let dstats = compute_stats(&dense.raw_edges);
        assert!(dstats.density > 0.7, "density {}", dstats.density);

        let sparse = generate(DatasetKind::SparseGraph, 0.0005, 5);
        let sstats = compute_stats(&sparse.raw_edges);
        assert!(
            (sstats.avg_degree - 6.0).abs() < 1.0,
            "avg {}",
            sstats.avg_degree
        );
        assert!(sstats.density < 1e-2);
    }

    #[test]
    fn distinct_edges_preserve_first_arrival_order_and_content() {
        let ds = generate(DatasetKind::StackOverflow, 0.001, 6);
        let distinct = ds.distinct_edges();
        let as_set: HashSet<_> = distinct.iter().copied().collect();
        let stream_set: HashSet<_> = ds.raw_edges.iter().copied().collect();
        assert_eq!(as_set, stream_set);
        assert_eq!(
            as_set.len(),
            distinct.len(),
            "distinct_edges returned duplicates"
        );
    }

    #[test]
    fn profile_and_name_pass_through() {
        let ds = generate(DatasetKind::Weibo, 0.0001, 7);
        assert_eq!(ds.name(), "Weibo");
        assert_eq!(ds.profile().nodes, 58_660_000);
        assert!(ds.scale > 0.0);
    }
}
