//! Published statistics of the evaluation datasets (Table IV of the paper).

/// The seven datasets of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// CAIDA anonymised IP traces: edges are (source IP, destination IP) per
    /// flow, heavily duplicated.
    Caida,
    /// University of Notre Dame web graph: pages and hyperlinks.
    NotreDame,
    /// Stack Overflow user-interaction temporal network.
    StackOverflow,
    /// English Wikipedia talk-page interactions.
    WikiTalk,
    /// Sina Weibo follower interactions.
    Weibo,
    /// Synthetic dense graph (density 0.9) from the paper.
    DenseGraph,
    /// Synthetic sparse graph (constant degree 6) from the paper.
    SparseGraph,
}

/// The Table IV row for one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Whether the raw stream contains duplicate edges ("Weighted?" column).
    pub weighted: bool,
    /// Number of distinct nodes.
    pub nodes: u64,
    /// Number of raw edges (stream items).
    pub raw_edges: u64,
    /// Number of distinct edges after deduplication.
    pub distinct_edges: u64,
    /// Average degree (distinct edges / nodes).
    pub avg_degree: f64,
    /// Maximum total degree.
    pub max_degree: u64,
    /// Edge density `|E| / (|V|·(|V|−1))`.
    pub density: f64,
}

impl DatasetKind {
    /// All seven datasets in the order the paper's figures use.
    pub fn all() -> [DatasetKind; 7] {
        [
            DatasetKind::Caida,
            DatasetKind::NotreDame,
            DatasetKind::StackOverflow,
            DatasetKind::WikiTalk,
            DatasetKind::Weibo,
            DatasetKind::DenseGraph,
            DatasetKind::SparseGraph,
        ]
    }

    /// The published Table IV statistics of this dataset.
    pub fn profile(self) -> DatasetProfile {
        match self {
            DatasetKind::Caida => DatasetProfile {
                name: "CAIDA",
                weighted: true,
                nodes: 510_000,
                raw_edges: 27_120_000,
                distinct_edges: 850_000,
                avg_degree: 1.66,
                max_degree: 17_950,
                density: 3.26e-6,
            },
            DatasetKind::NotreDame => DatasetProfile {
                name: "NotreDame",
                weighted: false,
                nodes: 330_000,
                raw_edges: 1_500_000,
                distinct_edges: 1_500_000,
                avg_degree: 4.60,
                max_degree: 10_721,
                density: 1.41e-5,
            },
            DatasetKind::StackOverflow => DatasetProfile {
                name: "StackOverflow",
                weighted: true,
                nodes: 2_600_000,
                raw_edges: 63_500_000,
                distinct_edges: 36_230_000,
                avg_degree: 13.92,
                max_degree: 60_406,
                density: 5.35e-6,
            },
            DatasetKind::WikiTalk => DatasetProfile {
                name: "WikiTalk",
                weighted: true,
                nodes: 2_990_000,
                raw_edges: 24_980_000,
                distinct_edges: 9_380_000,
                // Published Table IV average degree; coincidentally close to π.
                #[allow(clippy::approx_constant)]
                avg_degree: 3.14,
                max_degree: 146_311,
                density: 1.05e-6,
            },
            DatasetKind::Weibo => DatasetProfile {
                name: "Weibo",
                weighted: false,
                nodes: 58_660_000,
                raw_edges: 261_320_000,
                distinct_edges: 261_320_000,
                avg_degree: 4.46,
                max_degree: 278_491,
                density: 7.60e-8,
            },
            DatasetKind::DenseGraph => DatasetProfile {
                name: "DenseGraph",
                weighted: false,
                nodes: 8_000,
                raw_edges: 57_590_000,
                distinct_edges: 57_590_000,
                avg_degree: 7_199.16,
                max_degree: 14_537,
                density: 0.90,
            },
            DatasetKind::SparseGraph => DatasetProfile {
                name: "SparseGraph",
                weighted: false,
                nodes: 5_000_000,
                raw_edges: 30_000_000,
                distinct_edges: 30_000_000,
                avg_degree: 6.0,
                max_degree: 6,
                density: 1.20e-6,
            },
        }
    }

    /// The dataset name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        self.profile().name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_has_seven_rows() {
        assert_eq!(DatasetKind::all().len(), 7);
        let names: Vec<_> = DatasetKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "CAIDA",
                "NotreDame",
                "StackOverflow",
                "WikiTalk",
                "Weibo",
                "DenseGraph",
                "SparseGraph"
            ]
        );
    }

    #[test]
    fn unweighted_datasets_have_no_duplicates() {
        for kind in DatasetKind::all() {
            let p = kind.profile();
            if !p.weighted {
                assert_eq!(p.raw_edges, p.distinct_edges, "{}", p.name);
            } else {
                assert!(p.raw_edges > p.distinct_edges, "{}", p.name);
            }
        }
    }

    #[test]
    fn average_degree_is_consistent_with_counts() {
        for kind in DatasetKind::all() {
            let p = kind.profile();
            let derived = p.distinct_edges as f64 / p.nodes as f64;
            // Table IV rounds aggressively; stay within 20% of the derived value.
            assert!(
                (derived - p.avg_degree).abs() / p.avg_degree < 0.2,
                "{}: derived {derived} vs published {}",
                p.name,
                p.avg_degree
            );
        }
    }

    #[test]
    fn dense_graph_is_actually_dense() {
        let p = DatasetKind::DenseGraph.profile();
        assert!(p.density > 0.5);
        let p = DatasetKind::SparseGraph.profile();
        assert!(p.density < 1e-5);
    }
}
