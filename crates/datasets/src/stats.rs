//! Statistics computed from an edge stream — the code path that regenerates
//! Table IV from the synthetic datasets (`reproduce table4`).

use graph_api::NodeId;
use std::collections::{HashMap, HashSet};

/// Statistics of an edge stream, mirroring the columns of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Distinct nodes appearing as a source or a destination.
    pub nodes: u64,
    /// Raw stream length.
    pub raw_edges: u64,
    /// Distinct directed edges.
    pub distinct_edges: u64,
    /// Average out-degree over distinct edges (`distinct_edges / nodes`).
    pub avg_degree: f64,
    /// Maximum total (in + out) degree over distinct edges.
    pub max_degree: u64,
    /// Edge density `distinct_edges / (nodes · (nodes − 1))`.
    pub density: f64,
}

/// Computes [`DatasetStats`] from a raw edge stream.
pub fn compute_stats(stream: &[(NodeId, NodeId)]) -> DatasetStats {
    let mut nodes: HashSet<NodeId> = HashSet::new();
    let mut distinct: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(stream.len());
    for &(u, v) in stream {
        nodes.insert(u);
        nodes.insert(v);
        distinct.insert((u, v));
    }
    let mut degree: HashMap<NodeId, u64> = HashMap::with_capacity(nodes.len());
    for &(u, v) in &distinct {
        *degree.entry(u).or_insert(0) += 1;
        *degree.entry(v).or_insert(0) += 1;
    }
    let n = nodes.len() as u64;
    let e = distinct.len() as u64;
    DatasetStats {
        nodes: n,
        raw_edges: stream.len() as u64,
        distinct_edges: e,
        avg_degree: if n == 0 { 0.0 } else { e as f64 / n as f64 },
        max_degree: degree.values().copied().max().unwrap_or(0),
        density: if n > 1 {
            e as f64 / (n as f64 * (n as f64 - 1.0))
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_nodes_edges_and_duplicates() {
        let stream = vec![(1, 2), (1, 2), (2, 3), (3, 1)];
        let s = compute_stats(&stream);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.raw_edges, 4);
        assert_eq!(s.distinct_edges, 3);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
        // Every node has total degree 2 in the triangle.
        assert_eq!(s.max_degree, 2);
        assert!((s.density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hub_dominates_max_degree() {
        let mut stream = Vec::new();
        for v in 1..=100u64 {
            stream.push((0, v));
        }
        let s = compute_stats(&stream);
        assert_eq!(s.max_degree, 100);
        assert_eq!(s.nodes, 101);
    }

    #[test]
    fn empty_stream() {
        let s = compute_stats(&[]);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.raw_edges, 0);
        assert_eq!(s.distinct_edges, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.density, 0.0);
    }
}
