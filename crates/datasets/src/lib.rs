//! Graph datasets for the evaluation (§ V-A, Table IV).
//!
//! The paper evaluates on five real-world datasets (CAIDA, NotreDame,
//! StackOverflow, WikiTalk, Weibo) and two synthetic ones (DenseGraph,
//! SparseGraph). The real datasets are licensed or very large external
//! downloads, so this crate synthesises graphs whose published statistics
//! (node count, raw/deduplicated edge count, average and maximum degree,
//! density — Table IV) are matched at a configurable scale factor; loaders
//! for real SNAP edge-list files are provided so the originals can be dropped
//! in when available. `DESIGN.md` documents this substitution.
//!
//! * [`profile`] — the published Table IV statistics for each dataset.
//! * [`generator`] — power-law edge-stream synthesis matched to a profile.
//! * [`stats`] — statistics computed from an edge stream (regenerates Table IV).
//! * [`loader`] — SNAP-style edge-list file parsing.

pub mod generator;
pub mod loader;
pub mod profile;
pub mod stats;

pub use generator::{generate, Dataset};
pub use loader::{load_snap_edge_list, parse_snap_edge_list, sample_edge_list_path};
pub use profile::{DatasetKind, DatasetProfile};
pub use stats::{compute_stats, DatasetStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_at_small_scale() {
        for kind in DatasetKind::all() {
            let ds = generate(kind, 0.002, 42);
            assert!(!ds.raw_edges.is_empty(), "{kind:?} generated nothing");
            let stats = compute_stats(&ds.raw_edges);
            assert!(stats.nodes > 0, "{kind:?}");
            assert!(stats.distinct_edges <= stats.raw_edges, "{kind:?}");
            // Weighted datasets must actually contain duplicate edges.
            if kind.profile().weighted {
                assert!(
                    stats.raw_edges > stats.distinct_edges,
                    "{kind:?} should contain duplicates"
                );
            } else {
                assert_eq!(stats.raw_edges, stats.distinct_edges, "{kind:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(DatasetKind::Caida, 0.001, 7);
        let b = generate(DatasetKind::Caida, 0.001, 7);
        let c = generate(DatasetKind::Caida, 0.001, 8);
        assert_eq!(a.raw_edges, b.raw_edges);
        assert_ne!(a.raw_edges, c.raw_edges);
    }
}
