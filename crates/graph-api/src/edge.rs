//! Node and edge primitives.
//!
//! The paper stores 8-byte node identifiers (§ II-A describes Spruce splitting
//! an 8-byte identifier); we use `u64` throughout.

/// A graph node identifier. The paper's datasets identify nodes with 8-byte
/// integers (IP addresses, user ids, page ids), so `u64` is the native type.
pub type NodeId = u64;

/// A directed, unweighted graph edge `⟨u, v⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Source node (`u` in the paper's notation).
    pub src: NodeId,
    /// Destination node (`v` in the paper's notation).
    pub dst: NodeId,
}

impl Edge {
    /// Creates a new edge from `src` to `dst`.
    #[inline]
    pub const fn new(src: NodeId, dst: NodeId) -> Self {
        Self { src, dst }
    }

    /// Returns the edge with source and destination swapped.
    #[inline]
    pub const fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Returns true if the edge is a self loop.
    #[inline]
    pub const fn is_self_loop(self) -> bool {
        self.src == self.dst
    }
}

impl From<(NodeId, NodeId)> for Edge {
    #[inline]
    fn from((src, dst): (NodeId, NodeId)) -> Self {
        Self { src, dst }
    }
}

/// A directed edge with a multiplicity / weight, as used by the extended
/// (streaming) version of CuckooGraph (§ III-B) where duplicate edges are
/// folded into a counter `w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightedEdge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Weight (number of times the edge appeared, or an application value).
    pub weight: u64,
}

impl WeightedEdge {
    /// Creates a new weighted edge.
    #[inline]
    pub const fn new(src: NodeId, dst: NodeId, weight: u64) -> Self {
        Self { src, dst, weight }
    }

    /// Drops the weight, returning the plain edge.
    #[inline]
    pub const fn edge(self) -> Edge {
        Edge {
            src: self.src,
            dst: self.dst,
        }
    }
}

impl From<Edge> for WeightedEdge {
    #[inline]
    fn from(e: Edge) -> Self {
        Self {
            src: e.src,
            dst: e.dst,
            weight: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors_and_accessors() {
        let e = Edge::new(3, 7);
        assert_eq!(e.src, 3);
        assert_eq!(e.dst, 7);
        assert_eq!(e.reversed(), Edge::new(7, 3));
        assert!(!e.is_self_loop());
        assert!(Edge::new(5, 5).is_self_loop());
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (1u64, 2u64).into();
        assert_eq!(e, Edge::new(1, 2));
    }

    #[test]
    fn weighted_edge_roundtrip() {
        let w = WeightedEdge::new(1, 2, 9);
        assert_eq!(w.edge(), Edge::new(1, 2));
        let w2: WeightedEdge = Edge::new(4, 5).into();
        assert_eq!(w2.weight, 1);
    }

    #[test]
    fn edge_ordering_is_lexicographic() {
        let mut edges = vec![Edge::new(2, 1), Edge::new(1, 9), Edge::new(1, 2)];
        edges.sort();
        assert_eq!(
            edges,
            vec![Edge::new(1, 2), Edge::new(1, 9), Edge::new(2, 1)]
        );
    }
}
