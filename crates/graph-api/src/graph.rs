//! The [`DynamicGraph`] trait: the operation surface the paper benchmarks.

use crate::edge::NodeId;
use crate::footprint::MemoryFootprint;

/// Identifies a storage scheme in benchmark output (Figures 6-16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphScheme {
    /// CuckooGraph (this paper).
    CuckooGraph,
    /// LiveGraph-like baseline (vertex blocks + transactional edge log).
    LiveGraph,
    /// Sortledton-like baseline (adjacency index + sorted blocked sets).
    Sortledton,
    /// Wind-Bell Index baseline (adjacency matrix + hanging lists).
    WindBellIndex,
    /// Spruce-like baseline (hash node index + adjacency edge storage).
    Spruce,
    /// Plain adjacency list (reference point, not in the paper's figures).
    AdjacencyList,
    /// Packed-CSR baseline (PMA-backed CSR).
    Pcsr,
}

impl GraphScheme {
    /// Human-readable label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            GraphScheme::CuckooGraph => "CuckooGraph",
            GraphScheme::LiveGraph => "LiveGraph",
            GraphScheme::Sortledton => "Sortledton",
            GraphScheme::WindBellIndex => "WBI",
            GraphScheme::Spruce => "Spruce",
            GraphScheme::AdjacencyList => "AdjList",
            GraphScheme::Pcsr => "PCSR",
        }
    }
}

/// A dynamic directed graph supporting the operations measured in the paper.
///
/// All implementations store *distinct* directed edges (the basic version of
/// CuckooGraph deduplicates on insert); multiplicity is handled by
/// [`WeightedDynamicGraph`].
pub trait DynamicGraph: MemoryFootprint {
    /// Inserts the directed edge `⟨u, v⟩`. Returns `true` if the edge was not
    /// present before (i.e. the graph changed), `false` if it already existed.
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Returns `true` if the directed edge `⟨u, v⟩` is stored.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// Removes the directed edge `⟨u, v⟩`. Returns `true` if it was present.
    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Returns the out-neighbours (successors) of `u`. Order is unspecified.
    fn successors(&self, u: NodeId) -> Vec<NodeId>;

    /// Calls `f` for every successor of `u`. The default forwards to
    /// [`DynamicGraph::successors`]; implementations override it to avoid the
    /// intermediate allocation on the hot analytics path.
    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for v in self.successors(u) {
            f(v);
        }
    }

    /// Out-degree of `u` (0 if the node is unknown).
    fn out_degree(&self, u: NodeId) -> usize {
        self.successors(u).len()
    }

    /// Number of distinct directed edges stored.
    fn edge_count(&self) -> usize;

    /// Number of distinct source nodes stored (nodes that have, or have had,
    /// at least one outgoing edge). Isolated destination-only nodes may not be
    /// tracked by every scheme, matching the paper's storage model where the
    /// structure is keyed by the source endpoint.
    fn node_count(&self) -> usize;

    /// Every node currently known to the structure (sources; schemes that also
    /// track destinations may include them).
    fn nodes(&self) -> Vec<NodeId>;

    /// Scheme identifier for reporting.
    fn scheme(&self) -> GraphScheme;
}

/// A dynamic graph that also tracks edge multiplicities, matching the extended
/// version of CuckooGraph (§ III-B) used for streaming datasets with duplicate
/// edges (CAIDA, StackOverflow, WikiTalk).
pub trait WeightedDynamicGraph: MemoryFootprint {
    /// Inserts one occurrence of `⟨u, v⟩`, adding `delta` to its weight.
    /// Returns the new weight.
    fn insert_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64;

    /// Returns the weight of `⟨u, v⟩` (0 if absent).
    fn weight(&self, u: NodeId, v: NodeId) -> u64;

    /// Decrements the weight of `⟨u, v⟩` by `delta`, removing the edge when it
    /// reaches zero. Returns the remaining weight.
    fn delete_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64;

    /// Distinct edge count.
    fn distinct_edge_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels_are_stable() {
        assert_eq!(GraphScheme::CuckooGraph.label(), "CuckooGraph");
        assert_eq!(GraphScheme::Spruce.label(), "Spruce");
        assert_eq!(GraphScheme::WindBellIndex.label(), "WBI");
    }
}
