//! The [`DynamicGraph`] trait: the operation surface the paper benchmarks.
//!
//! The trait is **visitor-first**: implementations provide zero-allocation
//! traversal primitives ([`DynamicGraph::for_each_successor`],
//! [`DynamicGraph::for_each_node`]) and the collecting conveniences
//! ([`DynamicGraph::successors`], [`DynamicGraph::nodes`]) are derived from
//! them. This keeps the analytics kernels and the benchmark inner loops on the
//! probe paths of each storage scheme instead of measuring allocator churn —
//! the distinction the paper's successor-query evaluation (Figures 10–16) is
//! actually about.

use crate::edge::NodeId;
use crate::footprint::MemoryFootprint;

/// Identifies a storage scheme in benchmark output (Figures 6-16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphScheme {
    /// CuckooGraph (this paper).
    CuckooGraph,
    /// LiveGraph-like baseline (vertex blocks + transactional edge log).
    LiveGraph,
    /// Sortledton-like baseline (adjacency index + sorted blocked sets).
    Sortledton,
    /// Wind-Bell Index baseline (adjacency matrix + hanging lists).
    WindBellIndex,
    /// Spruce-like baseline (hash node index + adjacency edge storage).
    Spruce,
    /// Plain adjacency list (reference point, not in the paper's figures).
    AdjacencyList,
    /// Packed-CSR baseline (PMA-backed CSR).
    Pcsr,
}

impl GraphScheme {
    /// Human-readable label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            GraphScheme::CuckooGraph => "CuckooGraph",
            GraphScheme::LiveGraph => "LiveGraph",
            GraphScheme::Sortledton => "Sortledton",
            GraphScheme::WindBellIndex => "WBI",
            GraphScheme::Spruce => "Spruce",
            GraphScheme::AdjacencyList => "AdjList",
            GraphScheme::Pcsr => "PCSR",
        }
    }
}

/// Calls `f` once per maximal run of consecutive items sharing a source node,
/// with the source and the run subslice. The run-grouping step every batched
/// [`DynamicGraph::insert_edges`] implementation shares: resolve per-source
/// state once per run, then process the run's edges.
///
/// ```
/// let edges = [(1u64, 2u64), (1, 3), (2, 4), (1, 5)];
/// let mut runs = Vec::new();
/// graph_api::for_each_source_run(&edges, |e| e.0, |u, run| runs.push((u, run.len())));
/// assert_eq!(runs, vec![(1, 2), (2, 1), (1, 1)]);
/// ```
pub fn for_each_source_run<E>(
    items: &[E],
    key: impl Fn(&E) -> NodeId,
    mut f: impl FnMut(NodeId, &[E]),
) {
    let mut idx = 0usize;
    while idx < items.len() {
        let u = key(&items[idx]);
        let start = idx;
        while idx < items.len() && key(&items[idx]) == u {
            idx += 1;
        }
        f(u, &items[start..idx]);
    }
}

/// A dynamic directed graph supporting the operations measured in the paper.
///
/// All implementations store *distinct* directed edges (the basic version of
/// CuckooGraph deduplicates on insert); multiplicity is handled by
/// [`WeightedDynamicGraph`].
///
/// Implementations provide the borrowing visitors; `successors()` and
/// `nodes()` are provided methods that collect through them, so existing
/// callers keep working while hot loops migrate to the visitors.
pub trait DynamicGraph: MemoryFootprint {
    /// Inserts the directed edge `⟨u, v⟩`. Returns `true` if the edge was not
    /// present before (i.e. the graph changed), `false` if it already existed.
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Returns `true` if the directed edge `⟨u, v⟩` is stored.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// Removes the directed edge `⟨u, v⟩`. Returns `true` if it was present.
    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool;

    /// Calls `f` for every successor of `u`, in unspecified order, without
    /// allocating — the hot traversal primitive every analytics kernel and
    /// bench inner loop goes through.
    ///
    /// ```
    /// use graph_api::DynamicGraph;
    ///
    /// let mut g = cuckoograph::CuckooGraph::new();
    /// g.insert_edges(&[(1, 2), (1, 3)]);
    /// let mut sum = 0;
    /// g.for_each_successor(1, &mut |v| sum += v);
    /// assert_eq!(sum, 5);
    /// ```
    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId));

    /// Calls `f` for every node currently known to the structure (sources;
    /// schemes that also track destinations may include them), in unspecified
    /// order, without allocating.
    ///
    /// ```
    /// use graph_api::DynamicGraph;
    ///
    /// let mut g = cuckoograph::CuckooGraph::new();
    /// g.insert_edges(&[(1, 2), (4, 5)]);
    /// let mut count = 0;
    /// g.for_each_node(&mut |_| count += 1);
    /// assert_eq!(count, g.node_count());
    /// ```
    fn for_each_node(&self, f: &mut dyn FnMut(NodeId));

    /// Out-degree of `u` (0 if the node is unknown). The default counts via
    /// [`DynamicGraph::for_each_successor`]; implementations override it when
    /// they track degrees explicitly.
    ///
    /// ```
    /// use graph_api::DynamicGraph;
    ///
    /// let mut g = cuckoograph::CuckooGraph::new();
    /// g.insert_edges(&[(1, 2), (1, 3), (2, 3)]);
    /// assert_eq!(g.out_degree(1), 2);
    /// assert_eq!(g.out_degree(99), 0);
    /// ```
    fn out_degree(&self, u: NodeId) -> usize {
        let mut n = 0usize;
        self.for_each_successor(u, &mut |_| n += 1);
        n
    }

    /// Inserts a batch of edges, returning how many were newly created
    /// (duplicates within the batch or against the stored graph count once).
    /// The default loops over [`DynamicGraph::insert_edge`]; implementations
    /// override it to hoist per-edge setup (node-cell resolution, config
    /// reads) out of the loop, which pays off most when the batch groups
    /// edges by source node.
    ///
    /// ```
    /// use graph_api::DynamicGraph;
    ///
    /// let mut g = cuckoograph::CuckooGraph::new();
    /// let created = g.insert_edges(&[(1, 2), (1, 3), (1, 2)]);
    /// assert_eq!(created, 2);
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        edges
            .iter()
            .filter(|&&(u, v)| self.insert_edge(u, v))
            .count()
    }

    /// Removes a batch of edges, returning how many were present (and thus
    /// actually removed). The default loops over
    /// [`DynamicGraph::delete_edge`]; implementations override it to hoist
    /// per-edge setup out of the loop — mirroring
    /// [`DynamicGraph::insert_edges`], a batch grouped by source node resolves
    /// each node's storage once per run instead of once per edge.
    ///
    /// ```
    /// use graph_api::DynamicGraph;
    ///
    /// let mut g = cuckoograph::CuckooGraph::new();
    /// g.insert_edges(&[(1, 2), (1, 3), (2, 4)]);
    /// let removed = g.remove_edges(&[(1, 2), (1, 3), (9, 9)]);
    /// assert_eq!(removed, 2);
    /// assert_eq!(g.edge_count(), 1);
    /// ```
    fn remove_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        edges
            .iter()
            .filter(|&&(u, v)| self.delete_edge(u, v))
            .count()
    }

    /// Returns the out-neighbours (successors) of `u`. Order is unspecified.
    /// Collects through [`DynamicGraph::for_each_successor`]; hot paths use
    /// the visitor directly to avoid the allocation.
    fn successors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.out_degree(u));
        self.for_each_successor(u, &mut |v| out.push(v));
        out
    }

    /// Number of distinct directed edges stored.
    fn edge_count(&self) -> usize;

    /// Number of distinct source nodes stored (nodes that have, or have had,
    /// at least one outgoing edge). Isolated destination-only nodes may not be
    /// tracked by every scheme, matching the paper's storage model where the
    /// structure is keyed by the source endpoint.
    fn node_count(&self) -> usize;

    /// Every node currently known to the structure. Collects through
    /// [`DynamicGraph::for_each_node`]; hot paths use the visitor directly.
    fn nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        self.for_each_node(&mut |u| out.push(u));
        out
    }

    /// Scheme identifier for reporting.
    fn scheme(&self) -> GraphScheme;
}

/// A dynamic graph partitioned into independent shards by source node — the
/// contract parallel analytics passes drive.
///
/// Every edge `⟨u, v⟩` lives entirely inside the shard that owns `u`
/// ([`ShardedGraph::shard_of`]), so the shards partition the source-node space:
/// per-shard traversals visit disjoint node sets, and merging the per-shard
/// results reconstructs the whole-graph answer. Shard views are `Sync`, so a
/// caller may scan all shards from scoped threads at once.
///
/// The view is scoped to a closure rather than returned as a bare reference:
/// implementations with concurrent writers bracket the closure with their
/// read protocol (reader registration, seqlock validation), which a `&dyn`
/// escaping the call could not honour.
///
/// ```
/// use graph_api::{DynamicGraph, ShardedGraph};
///
/// let mut g = cuckoograph::ShardedCuckooGraph::new(4);
/// g.insert_edges(&[(1, 2), (2, 3), (3, 4)]);
/// assert_eq!(g.shard_count(), 4);
/// let mut nodes = 0;
/// for shard in 0..g.shard_count() {
///     g.with_shard_view(shard, &mut |view| view.for_each_node(&mut |_| nodes += 1));
/// }
/// assert_eq!(nodes, g.node_count());
/// ```
pub trait ShardedGraph: DynamicGraph + Sync {
    /// Number of shards the graph is partitioned into (at least 1).
    fn shard_count(&self) -> usize;

    /// The shard that owns source node `u` (and every edge leaving it).
    fn shard_of(&self, u: NodeId) -> usize;

    /// Runs `f` with a read view of one shard, under the implementation's
    /// read protocol. The views of distinct shards cover disjoint source-node
    /// sets and their union is the whole graph.
    fn with_shard_view(&self, shard: usize, f: &mut dyn FnMut(&(dyn DynamicGraph + Sync)));
}

/// The read-only operation set a serving layer may answer from a concurrent
/// read snapshot — the classification surface behind read/write command
/// routing: a command expressible against this trait is safe to dispatch on a
/// reader handle while a writer mutates the same graph, everything else must
/// serialize through the write path.
///
/// Implementors are snapshot *handles* (e.g. a registered read view over a
/// sharded graph), not necessarily the graph type itself, so the methods take
/// `&self` and promise internally consistent answers per call — concurrent
/// writers may land between two calls.
pub trait GraphReadSnapshot {
    /// Whether edge `⟨u, v⟩` is currently stored.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// Current out-degree of `u`.
    fn out_degree(&self, u: NodeId) -> usize;

    /// Calls `f` with every current successor of `u`.
    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId));

    /// Collects the current successors of `u` (order unspecified).
    fn successors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_successor(u, &mut |v| out.push(v));
        out
    }

    /// Total stored edges.
    fn edge_count(&self) -> usize;

    /// Total stored source nodes.
    fn node_count(&self) -> usize;
}

/// A dynamic graph that also tracks edge multiplicities, matching the extended
/// version of CuckooGraph (§ III-B) used for streaming datasets with duplicate
/// edges (CAIDA, StackOverflow, WikiTalk).
pub trait WeightedDynamicGraph: MemoryFootprint {
    /// Inserts one occurrence of `⟨u, v⟩`, adding `delta` to its weight.
    /// Returns the new weight.
    fn insert_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64;

    /// Returns the weight of `⟨u, v⟩` (0 if absent).
    fn weight(&self, u: NodeId, v: NodeId) -> u64;

    /// Decrements the weight of `⟨u, v⟩` by `delta`, removing the edge when it
    /// reaches zero. Returns the remaining weight.
    fn delete_weighted(&mut self, u: NodeId, v: NodeId, delta: u64) -> u64;

    /// Calls `f` with `(v, weight)` for every successor of `u`, in
    /// unspecified order, without allocating — the weighted analogue of
    /// [`DynamicGraph::for_each_successor`].
    ///
    /// ```
    /// use graph_api::WeightedDynamicGraph;
    ///
    /// let mut g = cuckoograph::WeightedCuckooGraph::new();
    /// g.insert_weighted_edges(&[(1, 2, 3), (1, 5, 1)]);
    /// let mut total = 0;
    /// g.for_each_weighted_successor(1, &mut |_, w| total += w);
    /// assert_eq!(total, 4);
    /// ```
    fn for_each_weighted_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId, u64));

    /// The `(successor, weight)` pairs of `u`. Order is unspecified; collects
    /// through [`WeightedDynamicGraph::for_each_weighted_successor`].
    fn weighted_successors(&self, u: NodeId) -> Vec<(NodeId, u64)> {
        let mut out = Vec::new();
        self.for_each_weighted_successor(u, &mut |v, w| out.push((v, w)));
        out
    }

    /// Inserts a batch of `(u, v, delta)` occurrences, returning how many
    /// *distinct* edges were newly created (weight bumps of existing edges do
    /// not count). The default loops over
    /// [`WeightedDynamicGraph::insert_weighted`]; implementations override it
    /// to hoist per-edge setup out of the loop.
    ///
    /// ```
    /// use graph_api::WeightedDynamicGraph;
    ///
    /// let mut g = cuckoograph::WeightedCuckooGraph::new();
    /// let created = g.insert_weighted_edges(&[(1, 2, 1), (1, 2, 1), (3, 4, 5)]);
    /// assert_eq!(created, 2);
    /// assert_eq!(g.weight(1, 2), 2);
    /// ```
    fn insert_weighted_edges(&mut self, edges: &[(NodeId, NodeId, u64)]) -> usize {
        let mut created = 0usize;
        for &(u, v, delta) in edges {
            let existed = self.weight(u, v) > 0;
            self.insert_weighted(u, v, delta);
            if !existed {
                created += 1;
            }
        }
        created
    }

    /// Distinct edge count.
    fn distinct_edge_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scheme_labels_are_stable() {
        assert_eq!(GraphScheme::CuckooGraph.label(), "CuckooGraph");
        assert_eq!(GraphScheme::Spruce.label(), "Spruce");
        assert_eq!(GraphScheme::WindBellIndex.label(), "WBI");
    }

    /// A minimal trait implementation exercising every provided method
    /// through the visitor primitives alone.
    #[derive(Debug, Default)]
    struct MapGraph {
        adj: BTreeMap<NodeId, Vec<NodeId>>,
        edges: usize,
    }

    impl MemoryFootprint for MapGraph {
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    impl DynamicGraph for MapGraph {
        fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
            let list = self.adj.entry(u).or_default();
            if list.contains(&v) {
                return false;
            }
            list.push(v);
            self.edges += 1;
            true
        }

        fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
            self.adj.get(&u).is_some_and(|l| l.contains(&v))
        }

        fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
            let Some(list) = self.adj.get_mut(&u) else {
                return false;
            };
            let Some(i) = list.iter().position(|&x| x == v) else {
                return false;
            };
            list.swap_remove(i);
            self.edges -= 1;
            true
        }

        fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
            if let Some(list) = self.adj.get(&u) {
                for &v in list {
                    f(v);
                }
            }
        }

        fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
            for &u in self.adj.keys() {
                f(u);
            }
        }

        fn edge_count(&self) -> usize {
            self.edges
        }

        fn node_count(&self) -> usize {
            self.adj.len()
        }

        fn scheme(&self) -> GraphScheme {
            GraphScheme::AdjacencyList
        }
    }

    #[test]
    fn provided_methods_derive_from_the_visitors() {
        let mut g = MapGraph::default();
        assert_eq!(g.insert_edges(&[(1, 2), (1, 3), (1, 2), (4, 5)]), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.out_degree(9), 0);
        let mut succ = g.successors(1);
        succ.sort_unstable();
        assert_eq!(succ, vec![2, 3]);
        let mut nodes = g.nodes();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 4]);
    }

    #[test]
    fn default_batch_insert_matches_the_per_edge_loop() {
        let edges = [(1u64, 2u64), (2, 3), (1, 2), (3, 1), (2, 3)];
        let mut batched = MapGraph::default();
        let mut looped = MapGraph::default();
        let created = batched.insert_edges(&edges);
        let mut expected = 0;
        for &(u, v) in &edges {
            if looped.insert_edge(u, v) {
                expected += 1;
            }
        }
        assert_eq!(created, expected);
        assert_eq!(batched.edge_count(), looped.edge_count());
    }
}
