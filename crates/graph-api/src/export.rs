//! The stable edge-record export/import surface behind persistence.
//!
//! Snapshot writers, AOF rewrite and bulk restore all need the same thing: a
//! flat, scheme-independent stream of edge records covering every graph
//! variant (basic, weighted, multi-edge, sharded). [`EdgeExport`] provides it
//! as a zero-allocation visitor so serialisation code never reaches into
//! table internals, and [`EdgeImport`] is the matching bulk-rebuild entry
//! point (implementations route it through their batched insert paths).

use crate::edge::NodeId;

/// One exported edge: the source/target pair plus the per-variant extras.
///
/// * basic graphs export `weight == 1`, `multiplicity == 1`;
/// * weighted graphs export their accumulated weight, `multiplicity == 1`;
/// * multi-edge graphs export `multiplicity ==` number of parallel edges
///   (identifiers are not part of the stable record — they are owned by the
///   database layer above).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeRecord {
    /// Source node (`u`).
    pub source: NodeId,
    /// Target node (`v`).
    pub target: NodeId,
    /// Accumulated edge weight (1 for unweighted schemes).
    pub weight: u64,
    /// Number of parallel edges folded into this record (1 outside the
    /// multi-edge variant).
    pub multiplicity: u32,
}

impl EdgeRecord {
    /// A plain unweighted record.
    #[inline]
    pub const fn unweighted(source: NodeId, target: NodeId) -> Self {
        Self {
            source,
            target,
            weight: 1,
            multiplicity: 1,
        }
    }

    /// A weighted record with multiplicity 1.
    #[inline]
    pub const fn weighted(source: NodeId, target: NodeId, weight: u64) -> Self {
        Self {
            source,
            target,
            weight,
            multiplicity: 1,
        }
    }
}

/// Stable export visitor over every stored edge record.
///
/// The visitation order is unspecified, but the multiset of records is exact:
/// re-importing them through [`EdgeImport`] rebuilds an equivalent graph.
pub trait EdgeExport {
    /// Calls `f` once per stored edge record, without allocating.
    fn for_each_edge_record(&self, f: &mut dyn FnMut(EdgeRecord));

    /// Number of records [`EdgeExport::for_each_edge_record`] will visit.
    /// Used to pre-size serialisation buffers.
    fn edge_record_count(&self) -> usize;

    /// Collects every record (convenience; hot paths use the visitor).
    fn edge_records(&self) -> Vec<EdgeRecord> {
        let mut out = Vec::with_capacity(self.edge_record_count());
        self.for_each_edge_record(&mut |r| out.push(r));
        out
    }
}

/// Bulk restore from edge records — the other half of [`EdgeExport`].
///
/// Implementations route the batch through their grouped insert paths, so a
/// snapshot restore costs the same as a native bulk load. Weights and
/// multiplicities are applied according to the implementing scheme (an
/// unweighted graph ignores both beyond edge existence).
pub trait EdgeImport {
    /// Inserts every record into the graph.
    fn import_edge_records(&mut self, records: &[EdgeRecord]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_constructors() {
        let r = EdgeRecord::unweighted(1, 2);
        assert_eq!(r.weight, 1);
        assert_eq!(r.multiplicity, 1);
        let w = EdgeRecord::weighted(1, 2, 9);
        assert_eq!(w.weight, 9);
        assert_eq!(w.multiplicity, 1);
    }

    #[test]
    fn edge_records_collects_through_the_visitor() {
        struct Two;
        impl EdgeExport for Two {
            fn for_each_edge_record(&self, f: &mut dyn FnMut(EdgeRecord)) {
                f(EdgeRecord::unweighted(1, 2));
                f(EdgeRecord::weighted(3, 4, 7));
            }
            fn edge_record_count(&self) -> usize {
                2
            }
        }
        let records = Two.edge_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].weight, 7);
    }
}
