//! Memory-usage accounting.
//!
//! Figure 9 of the paper plots "Memory Usage (MB)" against the number of
//! inserted items for every scheme. Each storage scheme in this workspace
//! reports its own resident bytes through [`MemoryFootprint`], counting the
//! heap blocks it owns (bucket arrays, adjacency blocks, edge logs, ...).

/// Types that can report how much memory they currently occupy.
pub trait MemoryFootprint {
    /// Number of bytes currently allocated by the structure, including
    /// per-allocation payloads but excluding allocator bookkeeping.
    fn memory_bytes(&self) -> usize;

    /// Memory usage in mebibytes, convenient for reproducing the paper's
    /// figures which are reported in MB.
    fn memory_mb(&self) -> f64 {
        self.memory_bytes() as f64 / (1024.0 * 1024.0)
    }
}

/// Helper: bytes occupied by a `Vec`'s heap buffer (capacity, not length).
#[inline]
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Helper: bytes occupied by a boxed slice.
#[inline]
pub fn boxed_slice_bytes<T>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(usize);
    impl MemoryFootprint for Fixed {
        fn memory_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn memory_mb_converts_bytes() {
        let f = Fixed(2 * 1024 * 1024);
        assert!((f.memory_mb() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn vec_bytes_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
    }

    #[test]
    fn boxed_slice_bytes_counts_len() {
        let s = vec![0u32; 10].into_boxed_slice();
        assert_eq!(boxed_slice_bytes(&s), 40);
    }
}
