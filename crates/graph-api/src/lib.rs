//! Common abstractions shared by the CuckooGraph implementation and every
//! baseline graph store in this workspace.
//!
//! The paper evaluates five schemes (CuckooGraph, LiveGraph, Sortledton,
//! Wind-Bell Index, Spruce) behind the same operations: edge insertion, edge
//! query, edge deletion, successor (out-neighbour) query, and memory-usage
//! reporting. This crate defines that surface as the [`DynamicGraph`] trait so
//! the benchmark harness and the analytics algorithms are generic over the
//! storage scheme, exactly like the paper's evaluation driver.

pub mod edge;
pub mod export;
pub mod footprint;
pub mod graph;

pub use edge::{Edge, NodeId, WeightedEdge};
pub use export::{EdgeExport, EdgeImport, EdgeRecord};
pub use footprint::MemoryFootprint;
pub use graph::{
    for_each_source_run, DynamicGraph, GraphReadSnapshot, GraphScheme, ShardedGraph,
    WeightedDynamicGraph,
};
