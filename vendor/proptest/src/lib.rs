//! Minimal API-compatible stand-in for the
//! [`proptest`](https://docs.rs/proptest) crate, vendored because this
//! workspace builds without network access.
//!
//! Implements the surface `tests/cuckoograph_model.rs` uses: the
//! [`Strategy`] trait with `prop_map`, integer-range / tuple / boolean
//! strategies, `collection::{vec, hash_set}`, the `proptest!`,
//! `prop_oneof!`, `prop_assert!` and `prop_assert_eq!` macros, and
//! [`ProptestConfig`]. Generation is deterministic per test (seeded from the
//! test's path) and there is **no shrinking** — a failing case panics with
//! the generated values' assertion message directly.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::Range;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (typically the test path).
    pub fn deterministic(label: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        label.hash(&mut hasher);
        TestRng {
            state: hasher.finish() | 1,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample below 0");
        self.next_u64() % bound
    }
}

/// A recipe for generating random values of `Self::Value`.
///
/// Object-safe for the generation path so [`BoxedStrategy`] works; the
/// combinator methods require `Self: Sized`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Weighted choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Builds the union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (weight, strategy) in &self.arms {
            if pick < *weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates hash sets whose elements come from `element`. If the element
    /// space is too small to reach the drawn size, the set saturates instead
    /// of looping forever.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` etc. resolve.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

/// Marker so `PhantomData` and `HashSet` imports above are exercised even in
/// minimal builds.
#[doc(hidden)]
pub fn _shim_footprint() -> (PhantomData<()>, usize) {
    (PhantomData, HashSet::<u8>::new().len())
}

/// Asserts a condition inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($arg:tt)+) => { assert!($cond, $($arg)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { assert_eq!($left, $right, $($arg)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($arg:tt)+) => { assert_ne!($left, $right, $($arg)+) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }` runs
/// `body` against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $pat = $crate::Strategy::generate(&($strategy), &mut rng);
                )+
                let run = || -> () { $body };
                let _ = case;
                run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("shim");
        let s = (0u64..10, 5usize..6).prop_map(|(a, b)| a + b as u64);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v), "v={v}");
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::TestRng::deterministic("shim2");
        let v = prop::collection::vec(0u32..5, 3..7).generate(&mut rng);
        assert!((3..7).contains(&v.len()));
        let s = prop::collection::hash_set(0u64..1000, 10..20).generate(&mut rng);
        assert!((10..20).contains(&s.len()));
    }

    #[test]
    fn oneof_honours_zero_weight_exclusion() {
        let mut rng = crate::TestRng::deterministic("shim3");
        let s = prop_oneof![
            1 => (0u8..1).prop_map(|_| "a"),
            3 => (0u8..1).prop_map(|_| "b"),
        ];
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                "a" => saw_a = true,
                _ => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, flip in prop::bool::ANY) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x, x);
            } else {
                prop_assert_ne!(x, x + 1);
            }
        }
    }
}
