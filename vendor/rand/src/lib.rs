//! Minimal API-compatible stand-in for the [`rand`](https://docs.rs/rand)
//! crate (0.8-era API), vendored because this workspace builds without
//! network access.
//!
//! Implements only the surface `graph-datasets` uses: `StdRng` +
//! `SeedableRng::seed_from_u64`, `Rng::{gen_bool, gen_range}`,
//! `SliceRandom::{choose, shuffle}`, and `distributions::WeightedIndex`.
//! The generator is SplitMix64 — statistically fine for synthetic graph
//! generation, deterministic for a given seed (though its streams differ
//! from the real crate's ChaCha-based `StdRng`).

use std::ops::Range;

/// Core pseudo-random number generation.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a uniform range can be drawn over.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the spans this workspace uses.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods over [`RngCore`], blanket-implemented.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator (here: SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Random distributions.
pub mod distributions {
    use super::RngCore;
    use std::borrow::Borrow;
    use std::fmt;

    /// Types that can be sampled to produce values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error building a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl fmt::Display for WeightedError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Draws indices with probability proportional to the given weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler from an iterator of `f64`-borrowable weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let target = unit * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&target).unwrap())
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let weights = [1.0f64, 0.0, 9.0];
        let dist = WeightedIndex::new(weights.iter()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "counts {counts:?}");
    }

    #[test]
    fn shuffle_and_choose_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
