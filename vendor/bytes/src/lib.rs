//! Minimal API-compatible stand-in for the [`bytes`](https://docs.rs/bytes)
//! crate, vendored because this workspace builds without network access.
//!
//! Only the surface the `kvstore` crate uses is implemented: [`Bytes`],
//! [`BytesMut`], and the [`Buf`] / [`BufMut`] traits with the handful of
//! methods the RESP codec and server call. Both buffer types are plain
//! `Vec<u8>` wrappers — no refcounted zero-copy splitting — which is
//! behaviourally identical for this workload, just less efficient on clone.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Creates a buffer from a static slice (copied, unlike the real crate).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.0).escape_debug()
        )
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes(s.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes(b.0)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// A mutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Appends the slice to the buffer.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.0).escape_debug()
        )
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut(data.to_vec())
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

/// Read-side buffer operations (consume from the front).
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;
    /// Discards the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.0.len(), "advance past end of buffer");
        self.0.drain(..cnt);
    }

    fn chunk(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side buffer operations (append to the back).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(b'+');
        b.put_slice(b"OK\r\n");
        assert_eq!(&b[..], b"+OK\r\n");
        b.advance(1);
        assert_eq!(&b[..], b"OK\r\n");
        let frozen = b.freeze();
        assert_eq!(frozen.to_vec(), b"OK\r\n".to_vec());
    }

    #[test]
    fn split_to_keeps_the_tail() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
    }
}
