//! Minimal API-compatible stand-in for the
//! [`criterion`](https://docs.rs/criterion) crate, vendored because this
//! workspace builds without network access.
//!
//! Implements the surface the `graph-bench` benchmarks use — benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, and the `criterion_group!` / `criterion_main!`
//! macros — as a simple mean-of-samples timer that prints one line per
//! benchmark. No statistical analysis, warm-up calibration, HTML reports, or
//! regression detection; the real crate drops in via Cargo.toml when network
//! access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching the real crate.
pub use std::hint::black_box;

/// Top-level benchmark configuration and driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration (one untimed run is always performed).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Caps how long one benchmark may keep sampling.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks. The group copies the
    /// current configuration, so per-group overrides (sample size,
    /// measurement time) never leak into later groups — matching the real
    /// crate's behaviour.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(BenchmarkId::from_parameter(""), &mut f);
        group.finish();
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// How `iter_batched` amortises setup cost (ignored by this shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A named collection of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement-time cap for this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, &mut f);
        self
    }

    /// Runs one benchmark, handing the input through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            deadline: self.measurement_time,
        };
        f(&mut bencher);
        let mean = if bencher.samples.is_empty() {
            Duration::ZERO
        } else {
            bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:>12.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(
                    "  {:>12.3} MiB/s",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {:<48} {:>12.3?} ({} samples){}",
            format!("{}/{}", self.name, id.label),
            mean,
            bencher.samples.len(),
            rate
        );
    }

    /// Ends the group (printing happens per-benchmark in this shim).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; records timing samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    deadline: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if started.elapsed() > self.deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is untimed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if started.elapsed() > self.deadline {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring the real crate's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring the real crate's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (--bench, --test,
            // filters); this shim runs everything and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_overrides_do_not_leak_into_later_groups() {
        let mut c = Criterion::default().sample_size(2);
        {
            let mut group = c.benchmark_group("first");
            group
                .sample_size(7)
                .measurement_time(Duration::from_millis(9));
            group.finish();
        }
        assert_eq!(c.sample_size, 2, "group override leaked into Criterion");
        assert_ne!(c.measurement_time, Duration::from_millis(9));
    }

    #[test]
    fn groups_record_samples_and_throughput() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::from_parameter("iter"), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |n| n * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
